//! Scraping a live TCP cluster's metrics over the wire.
//!
//! Spawns a 3-peer TCP deployment in-process (one [`serve_tcp_peer`] thread
//! per ring position, each journaling to its own storage directory under
//! group commit), drives a small workload through a real socket client,
//! then scrapes every peer with [`ClusterClient::scrape_metrics`] — the
//! [`rdht_net::Request::Metrics`] wire exchange — and prints each peer's
//! Prometheus text exposition. The expositions are validated with the
//! crate's own parser and checked for the roadmap-named instruments
//! (request service-time histograms, WAL fsyncs, queue depth, dedup hits,
//! indirect initializations, hand-off stall time).
//!
//! ```text
//! cargo run --release --example metrics
//! ```
//!
//! Point a Prometheus-format consumer at the printed text, or load the
//! chrome trace the simulator can emit (see `rdht-sim`) for the
//! per-operation timeline view.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::exit;
use std::thread;
use std::time::{Duration, Instant};

use rdht_core::ums;
use rdht_hashing::Key;
use rdht_net::{
    serve_tcp_peer, ClusterClient, ClusterStorage, PeerId, Request, TcpPeerConfig, TcpTransport,
    Transport,
};
use rdht_storage::{FsyncPolicy, StorageOptions};

const NUM_PEERS: usize = 3;
const NUM_REPLICAS: usize = 4;
const SEED: u64 = 7;
const KEYS: usize = 16;

/// Every instrument the scrape must expose — the roadmap's named set.
const REQUIRED: &[&str] = &[
    rdht_net::metrics::names::REQUESTS,
    rdht_net::metrics::names::QUEUE_DEPTH,
    rdht_net::metrics::names::DRAIN_BATCH,
    rdht_net::metrics::names::SERVICE_NS,
    rdht_net::metrics::names::DEDUP_APPLIED,
    rdht_net::metrics::names::DEDUP_SUPPRESSED,
    rdht_net::metrics::names::HANDOFF_STALL_NS,
    rdht_net::metrics::names::INDIRECT_INITS,
    rdht_storage::metrics::names::WAL_SYNCS,
    rdht_storage::metrics::names::BATCH_OPS,
    rdht_membership::metrics::names::EXPORT_NS,
];

fn wait_until_accepting(addr: &SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while TcpStream::connect(addr).is_err() {
        if Instant::now() >= deadline {
            rdht_metrics::log::global().error(
                "example.metrics",
                "peer never started accepting connections",
                &[("addr", &addr.to_string())],
            );
            exit(1);
        }
        thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    // Reserve loopback ports, then free them for the peer threads.
    let listeners: Vec<TcpListener> = (0..NUM_PEERS)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve a loopback port"))
        .collect();
    let book: Vec<(PeerId, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(i, listener)| {
            // Evenly spaced ring positions, so every peer owns a fair share
            // of the key space and its instruments have activity to show.
            (
                PeerId((i as u64 + 1) * (u64::MAX / NUM_PEERS as u64)),
                listener.local_addr().expect("reserved address"),
            )
        })
        .collect();
    drop(listeners);

    let storage_root =
        std::env::temp_dir().join(format!("rdht-metrics-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&storage_root);
    let storage = ClusterStorage::with_options(
        &storage_root,
        StorageOptions {
            fsync: FsyncPolicy::group_commit(64, Duration::from_millis(2)),
            ..StorageOptions::default()
        },
    );

    println!("starting {NUM_PEERS} TCP peers (journaled, group commit):");
    let mut peer_threads = Vec::new();
    for (id, addr) in &book {
        println!("  peer {:>5} listening on {addr}", id.0);
        let config = TcpPeerConfig {
            id: *id,
            peers: book.clone(),
            num_replicas: NUM_REPLICAS,
            seed: SEED,
            storage: Some(storage.clone()),
            trace_out: None,
        };
        peer_threads.push(thread::spawn(move || serve_tcp_peer(config)));
    }
    for (_, addr) in &book {
        wait_until_accepting(addr);
    }

    // A workload so the instruments have something to show: inserts
    // (timestamps + replica puts), re-reads, and one retried-looking double
    // insert per key to exercise the dedup path indirectly.
    let mut client = ClusterClient::connect_tcp(book.clone(), NUM_REPLICAS, SEED);
    for i in 0..KEYS {
        let key = Key::new(format!("observed:{i}"));
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).expect("insert");
        let got = ums::retrieve(&mut client, &key).expect("retrieve");
        assert!(got.is_current, "freshly inserted key reads current");
    }
    println!(
        "workload done: {KEYS} keys inserted and read back current \
         ({} client messages)\n",
        client.messages()
    );

    // Scrape every peer over the wire and validate the exposition.
    let mut failures = 0usize;
    for (id, addr) in &book {
        let exposition = client
            .scrape_metrics(*id)
            .expect("a live peer answers the metrics scrape");
        let parsed = rdht_metrics::parse::parse(&exposition)
            .expect("the exposition parses as Prometheus text format");
        println!(
            "=== peer {:>5} @ {addr}: {} samples ===",
            id.0,
            parsed.samples.len()
        );
        print!("{exposition}");
        println!();
        for name in REQUIRED {
            if !parsed.has_metric(name) {
                rdht_metrics::log::global().error(
                    "example.metrics",
                    "required instrument missing from scrape",
                    &[("peer", &id.0.to_string()), ("metric", name)],
                );
                failures += 1;
            }
        }
    }

    // Shut the ring down over the wire.
    let transport = TcpTransport::with_peers(book.iter().copied());
    for (id, _) in &book {
        if let Ok(endpoint) = transport.endpoint(*id) {
            let _ = endpoint.send_no_reply(Request::Shutdown);
        }
    }
    for handle in peer_threads {
        if let Err(error) = handle.join().expect("peer thread exits") {
            rdht_metrics::log::global().error(
                "example.metrics",
                "peer failed",
                &[("error", &error.to_string())],
            );
            failures += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&storage_root);

    if failures > 0 {
        rdht_metrics::log::global().error(
            "example.metrics",
            "metrics validation failed",
            &[("problems", &failures.to_string())],
        );
        exit(1);
    }
    println!("all {NUM_PEERS} peers scraped clean: every required instrument present");
}
