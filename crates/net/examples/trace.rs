//! Distributed tracing across OS processes: a 3-peer TCP deployment where
//! every process records its own chrome-trace file and the orchestrator
//! merges them into **one** trace in which a sampled insert's spans share a
//! trace id across process boundaries.
//!
//! Run with no arguments and the process *orchestrates*: it reserves one
//! loopback address per peer, re-launches itself as three peer processes
//! (one of them artificially slow — its WAL fsyncs on every op) and one
//! client process running fully-sampled inserts. Each process writes its
//! span file on exit; the orchestrator merges them with
//! [`rdht_net::merge_chrome_trace_files`] and verifies the causal story:
//!
//! * the merged JSON is a loadable chrome-trace object,
//! * it contains client-side (`client.call`), peer-side (`peer.apply`) and
//!   covering-fsync (`peer.fsync`) spans,
//! * at least one sampled trace id appears in the client process's file
//!   **and** a peer process's file — one logical request, two pids.
//!
//! The client process additionally scrapes every peer's slow-request ring
//! ([`rdht_net::ClusterClient::slow_requests`]) and asserts the per-phase
//! breakdown accounts for ≥ 90 % of each slow request's wall time.
//!
//! ```text
//! cargo run --release --example trace                  # writes trace_merged.json
//! cargo run --release --example trace -- out.json      # custom merged path
//! ```

use std::env;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{exit, Command};
use std::thread;
use std::time::{Duration, Instant};

use rdht_core::ums;
use rdht_hashing::Key;
use rdht_net::{
    merge_chrome_trace_files, serve_tcp_peer, ClusterClient, ClusterStorage, PeerId, Request,
    TcpPeerConfig, TcpTransport, TraceConfig, TraceSink, Transport,
};
use rdht_storage::{FsyncPolicy, StorageOptions};

const NUM_PEERS: usize = 3;
const NUM_REPLICAS: usize = 3;
const SEED: u64 = 97;
const INSERTS: usize = 24;

fn main() {
    let args: Vec<String> = env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("peer") => run_peer(&args[2], &args[3], &args[4], args.get(5).is_some()),
        Some("client") => run_client(&args[2], &args[3]),
        merged_out => orchestrate(merged_out.unwrap_or("trace_merged.json")),
    }
}

fn format_book(book: &[(PeerId, SocketAddr)]) -> String {
    book.iter()
        .map(|(id, addr)| format!("{}={addr}", id.0))
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_book(raw: &str) -> Vec<(PeerId, SocketAddr)> {
    raw.split(';')
        .map(|entry| {
            let (id, addr) = entry.split_once('=').expect("book entry is id=addr");
            (
                PeerId(id.parse().expect("peer id is a u64")),
                addr.parse().expect("peer address is a socket address"),
            )
        })
        .collect()
}

fn wait_until_accepting(addr: &SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while TcpStream::connect(addr).is_err() {
        if Instant::now() >= deadline {
            rdht_metrics::log::global().error(
                "example.trace",
                "peer never started accepting connections",
                &[("addr", &addr.to_string())],
            );
            exit(1);
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// Every 16-hex-digit `trace_id` args value found in a rendered trace file
/// (spans of a shared batch fsync join several ids with commas).
fn trace_ids_in(contents: &str) -> Vec<String> {
    let mut ids = Vec::new();
    let mut rest = contents;
    while let Some(at) = rest.find("\"trace_id\":\"") {
        rest = &rest[at + "\"trace_id\":\"".len()..];
        let end = rest.find('"').unwrap_or(0);
        for id in rest[..end].split(',') {
            if id.len() == 16 && !ids.iter().any(|seen| seen == id) {
                ids.push(id.to_string());
            }
        }
        rest = &rest[end..];
    }
    ids
}

/// Parent process: launch three traced peers (one slow) plus the sampled
/// client, then merge the per-process trace files and verify the causal
/// links survive the process boundaries.
fn orchestrate(merged_out: &str) {
    let exe = env::current_exe().expect("own executable path");
    let scratch = env::temp_dir().join(format!("rdht-trace-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch directory");

    let listeners: Vec<TcpListener> = (0..NUM_PEERS)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve a loopback port"))
        .collect();
    let book: Vec<(PeerId, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(i, listener)| {
            (
                PeerId((i as u64 + 1) * 1_000),
                listener.local_addr().expect("reserved address"),
            )
        })
        .collect();
    drop(listeners); // free the ports for the peer processes
    let book_arg = format_book(&book);

    println!("starting {NUM_PEERS} traced peer processes (first one slow):");
    let mut peers = Vec::new();
    let mut peer_trace_files = Vec::new();
    for (index, (id, addr)) in book.iter().enumerate() {
        let trace_path = scratch.join(format!("peer-{}.json", id.0));
        let slow = index == 0;
        println!(
            "  peer {:>5} on {addr}{}",
            id.0,
            if slow { "  (fsync per op)" } else { "" }
        );
        let mut command = Command::new(&exe);
        command
            .arg("peer")
            .arg(id.0.to_string())
            .arg(&book_arg)
            .arg(&trace_path);
        if slow {
            command.arg("slow");
        }
        peers.push(command.spawn().expect("spawn peer process"));
        peer_trace_files.push(trace_path);
    }
    for (_, addr) in &book {
        wait_until_accepting(addr);
    }

    println!("starting the sampled client process ({INSERTS} inserts)…");
    let client_trace = scratch.join("client.json");
    let client = Command::new(&exe)
        .arg("client")
        .arg(&book_arg)
        .arg(&client_trace)
        .status()
        .expect("run client process");

    // Shut the ring down over the wire — the peers render their trace
    // files on clean exit.
    let transport = TcpTransport::with_peers(book.iter().copied());
    for (id, _) in &book {
        if let Ok(endpoint) = transport.endpoint(*id) {
            let _ = endpoint.send_no_reply(Request::Shutdown);
        }
    }
    let mut all_ok = client.success();
    for mut peer in peers {
        all_ok &= peer.wait().expect("wait for peer process").success();
    }
    if !all_ok {
        rdht_metrics::log::global().error(
            "example.trace",
            "a peer or the client exited with an error",
            &[],
        );
        exit(1);
    }

    // Merge the per-process files into one loadable trace.
    let mut all_files = peer_trace_files.clone();
    all_files.push(client_trace.clone());
    let merged = merge_chrome_trace_files(&all_files).expect("merge per-process traces");
    assert!(
        merged.starts_with("{\"traceEvents\":[") && merged.trim_end().ends_with("]}"),
        "merged trace is a chrome-trace object"
    );
    for required in ["client.call", "peer.apply", "peer.fsync"] {
        assert!(
            merged.contains(&format!("\"name\":\"{required}\"")),
            "merged trace is missing {required} spans"
        );
    }

    // The causal link: a trace id born in the client process appears in a
    // peer process's spans too — one request, ≥ 2 pids, one trace.
    let client_ids = trace_ids_in(&std::fs::read_to_string(&client_trace).unwrap());
    assert!(
        !client_ids.is_empty(),
        "the client sampled at least one call"
    );
    let mut cross_process = 0usize;
    for path in &peer_trace_files {
        let peer_ids = trace_ids_in(&std::fs::read_to_string(path).unwrap());
        cross_process += client_ids.iter().filter(|id| peer_ids.contains(id)).count();
    }
    assert!(
        cross_process > 0,
        "no sampled trace id crossed a process boundary"
    );

    std::fs::write(merged_out, &merged).expect("write merged trace");
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "merged {} per-process trace files into {merged_out} \
         ({cross_process} trace ids span the client and a peer process)",
        all_files.len()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev");
}

/// Child process: one traced ring position. The slow variant journals to a
/// WAL that fsyncs **every** op — the artificial straggler whose fsync
/// phase dominates its slow-request breakdowns.
fn run_peer(id: &str, book: &str, trace_out: &str, slow: bool) {
    let id = PeerId(id.parse().expect("peer id is a u64"));
    let storage = slow.then(|| {
        let dir = env::temp_dir().join(format!("rdht-trace-slow-peer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ClusterStorage::with_options(dir, StorageOptions::with_fsync(FsyncPolicy::Always))
    });
    if let Err(error) = serve_tcp_peer(TcpPeerConfig {
        id,
        peers: parse_book(book),
        num_replicas: NUM_REPLICAS,
        seed: SEED,
        storage,
        trace_out: Some(PathBuf::from(trace_out)),
    }) {
        rdht_metrics::log::global().error(
            "example.trace",
            "peer failed",
            &[("peer", &id.0.to_string()), ("error", &error.to_string())],
        );
        exit(1);
    }
}

/// Child process: fully-sampled inserts, then the tail-attribution scrape.
fn run_client(book: &str, trace_out: &str) {
    let book = parse_book(book);
    let mut client = ClusterClient::connect_tcp(book.clone(), NUM_REPLICAS, SEED);
    let sink = TraceSink::new();
    client.attach_trace(sink.clone(), TraceConfig::always());

    for i in 0..INSERTS {
        let key = Key::new(format!("traced:{i}"));
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).expect("sampled insert");
    }

    // Ask every peer where its slow requests spent their time. The phases
    // partition arrival → reply by construction; anything below 90 %
    // attribution means a phase went missing.
    let mut scraped = 0usize;
    for (peer, _) in &book {
        for tree in client.slow_requests(*peer, 8).expect("slowlog scrape") {
            let attributed = tree.attributed_us();
            assert!(
                attributed * 10 >= tree.total_us * 9,
                "peer {} attributed only {attributed}µs of {}µs for {}",
                peer.0,
                tree.total_us,
                tree.name
            );
            scraped += 1;
        }
    }
    assert!(scraped > 0, "sampled inserts must fill the peer slowlogs");

    // The slowest call from the client's own ring, with its phase story.
    if let Some(worst) = client.slow_calls(1).into_iter().next() {
        let phases = worst
            .phases
            .iter()
            .filter(|(_, us)| *us > 0)
            .map(|(name, us)| format!("{name} {us}µs"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "client: slowest sampled call {} took {}µs ({phases})",
            worst.name, worst.total_us
        );
    }
    println!("client: {scraped} slow-request trees scraped, all ≥90% attributed");

    sink.write_to(trace_out).expect("write client trace file");
}
