//! A real multi-process UMS deployment over TCP, on one box.
//!
//! Run with no arguments and the process *orchestrates*: it reserves one
//! loopback address per peer, re-launches itself as `N` peer processes
//! (each serving one ring position with [`serve_tcp_peer`]) plus one
//! client process, waits for the client's multi-writer workload to finish,
//! and shuts the peers down over the wire. Every message between the
//! client and the peers — and between the peers themselves (forwarding,
//! hand-offs) — crosses the length-framed wire codec and a real socket.
//!
//! ```text
//! cargo run --release --example tcp_cluster        # 3 peer processes
//! cargo run --release --example tcp_cluster -- 5   # 5 peer processes
//! ```
//!
//! The client process runs four concurrent writers racing inserts on a set
//! of shared keys, then verifies every retrieve comes back `is_current` —
//! the paper's currency guarantee, across OS processes.

use std::env;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{exit, Command};
use std::thread;
use std::time::{Duration, Instant};

use rdht_core::ums;
use rdht_hashing::Key;
use rdht_net::{
    serve_tcp_peer, ClusterClient, PeerId, Request, TcpPeerConfig, TcpTransport, Transport,
};

const NUM_REPLICAS: usize = 4;
const SEED: u64 = 42;
const WRITERS: u8 = 4;
const SHARED_KEYS: usize = 10;
const PRIVATE_KEYS: usize = 6;

fn main() {
    let args: Vec<String> = env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("peer") => run_peer(&args[2], &args[3]),
        Some("client") => run_client(&args[2]),
        Some(n) => orchestrate(n.parse().unwrap_or(3)),
        None => orchestrate(3),
    }
}

fn format_book(book: &[(PeerId, SocketAddr)]) -> String {
    book.iter()
        .map(|(id, addr)| format!("{}={addr}", id.0))
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_book(raw: &str) -> Vec<(PeerId, SocketAddr)> {
    raw.split(';')
        .map(|entry| {
            let (id, addr) = entry.split_once('=').expect("book entry is id=addr");
            (
                PeerId(id.parse().expect("peer id is a u64")),
                addr.parse().expect("peer address is a socket address"),
            )
        })
        .collect()
}

fn wait_until_accepting(addr: &SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while TcpStream::connect(addr).is_err() {
        if Instant::now() >= deadline {
            rdht_metrics::log::global().error(
                "example.tcp_cluster",
                "peer never started accepting connections",
                &[("addr", &addr.to_string())],
            );
            exit(1);
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// Parent process: reserve addresses, launch peers and the client, verify
/// everything exits cleanly, shut the ring down over the wire.
fn orchestrate(num_peers: usize) {
    let num_peers = num_peers.max(3);
    let exe = env::current_exe().expect("own executable path");
    let listeners: Vec<TcpListener> = (0..num_peers)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve a loopback port"))
        .collect();
    let book: Vec<(PeerId, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(i, listener)| {
            (
                PeerId((i as u64 + 1) * 1_000),
                listener.local_addr().expect("reserved address"),
            )
        })
        .collect();
    drop(listeners); // free the ports for the peer processes
    let book_arg = format_book(&book);

    println!("starting {num_peers} peer processes:");
    let mut peers = Vec::new();
    for (id, addr) in &book {
        println!("  peer {:>5} listening on {addr}", id.0);
        let child = Command::new(&exe)
            .arg("peer")
            .arg(id.0.to_string())
            .arg(&book_arg)
            .spawn()
            .expect("spawn peer process");
        peers.push(child);
    }
    for (_, addr) in &book {
        wait_until_accepting(addr);
    }

    println!("starting the client process ({WRITERS} concurrent writers)…");
    let client = Command::new(&exe)
        .arg("client")
        .arg(&book_arg)
        .status()
        .expect("run client process");

    // Shut the ring down over the wire, whatever the client's outcome.
    let transport = TcpTransport::with_peers(book.iter().copied());
    for (id, _) in &book {
        if let Ok(endpoint) = transport.endpoint(*id) {
            let _ = endpoint.send_no_reply(Request::Shutdown);
        }
    }
    let mut all_ok = client.success();
    for mut peer in peers {
        let status = peer.wait().expect("wait for peer process");
        all_ok &= status.success();
    }
    if !all_ok {
        rdht_metrics::log::global().error(
            "example.tcp_cluster",
            "a peer or the client exited with an error",
            &[],
        );
        exit(1);
    }
    println!("all processes exited cleanly");
}

/// Child process: one ring position, served until `Shutdown` arrives.
fn run_peer(id: &str, book: &str) {
    let id = PeerId(id.parse().expect("peer id is a u64"));
    let peers = parse_book(book);
    if let Err(error) = serve_tcp_peer(TcpPeerConfig {
        id,
        peers,
        num_replicas: NUM_REPLICAS,
        seed: SEED,
        storage: None,
        trace_out: None,
    }) {
        rdht_metrics::log::global().error(
            "example.tcp_cluster",
            "peer failed",
            &[("peer", &id.0.to_string()), ("error", &error.to_string())],
        );
        exit(1);
    }
}

/// Child process: concurrent writers racing on shared keys, then a full
/// currency check.
fn run_client(book: &str) {
    let book = parse_book(book);
    thread::scope(|scope| {
        for writer in 0..WRITERS {
            let book = book.clone();
            scope.spawn(move || {
                let mut client = ClusterClient::connect_tcp(book, NUM_REPLICAS, SEED);
                for i in 0..SHARED_KEYS {
                    let key = Key::new(format!("shared:{i}"));
                    let value = format!("writer-{writer}:v{i}").into_bytes();
                    ums::insert(&mut client, &key, value).expect("racing insert");
                }
                for i in 0..PRIVATE_KEYS {
                    let key = Key::new(format!("private:{writer}:{i}"));
                    ums::insert(&mut client, &key, vec![writer, i as u8]).expect("private insert");
                }
            });
        }
    });

    let mut client = ClusterClient::connect_tcp(book, NUM_REPLICAS, SEED);
    let mut checked = 0usize;
    for i in 0..SHARED_KEYS {
        let key = Key::new(format!("shared:{i}"));
        let got = ums::retrieve(&mut client, &key).expect("retrieve shared key");
        assert!(
            got.is_current,
            "shared:{i} did not come back current after racing writers"
        );
        let data = String::from_utf8(got.data.expect("shared key has data")).unwrap();
        assert!(
            data.ends_with(&format!(":v{i}")),
            "wrong value for shared:{i}"
        );
        checked += 1;
    }
    for writer in 0..WRITERS {
        for i in 0..PRIVATE_KEYS {
            let key = Key::new(format!("private:{writer}:{i}"));
            let got = ums::retrieve(&mut client, &key).expect("retrieve private key");
            assert!(got.is_current, "private:{writer}:{i} not current");
            assert_eq!(
                got.data.expect("private key has data"),
                vec![writer, i as u8]
            );
            checked += 1;
        }
    }
    println!(
        "client OK: {checked} keys retrieved current over TCP \
         ({} messages exchanged by the checking client)",
        client.messages()
    );
}
