//! The [`Transport`] abstraction: how requests reach peers and how replies
//! find their way back, independent of whether the peers share a process.
//!
//! Three pieces make the peer loop transport-generic:
//!
//! * [`Mailbox`] — the receive side of a bound peer: a queue of
//!   [`Incoming`] work items, each a [`Request`] paired with the
//!   [`ReplySink`] its answer must be sent into. Over the channel transport
//!   the sink is the caller's in-process reply channel; over TCP it writes
//!   a framed reply envelope back onto the connection the request arrived
//!   on, tagged with the request id.
//! * [`PeerEndpoint`] — the send side: a cheap, cloneable handle addressing
//!   one peer. `send` allocates a request id, registers interest and
//!   returns a [`PendingReply`]; `send_with_sink` relays an existing sink
//!   (this is what makes request *forwarding* transparent — the forwarded
//!   request carries the original reply path, whatever transport it came
//!   in on).
//! * [`Transport`] — the factory tying both together with per-peer
//!   addressing: `bind` (accept side), `endpoint` (connect side) and
//!   `unbind` (teardown).
//!
//! Implementations: [`ChannelTransport`] (this module) wraps the in-process
//! mailbox mesh — deterministic, allocation-light, what every test and the
//! simulator use; [`crate::TcpTransport`] speaks the length-framed wire
//! codec over real sockets.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rdht_metrics::TraceContext;

use crate::cluster::PeerId;
use crate::message::{Reply, Request};

/// A typed transport failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The transport has no peer registered under this id.
    UnknownPeer(u64),
    /// The peer's mailbox, listener or connection is closed — the peer
    /// crashed, shut down or was unbound.
    Closed,
    /// The underlying socket failed (TCP only).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(id) => {
                write!(f, "no peer {id:016x} is registered with the transport")
            }
            TransportError::Closed => write!(f, "the peer is no longer reachable"),
            TransportError::Io(message) => write!(f, "transport I/O failure: {message}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Why a [`PeerEndpoint::call`] produced no usable reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallError {
    /// The request could not be delivered at all.
    Transport(TransportError),
    /// The request was delivered but its reply path was torn down before an
    /// answer arrived — the peer crashed mid-request or dropped it.
    Dropped,
    /// No reply arrived within the deadline.
    Timeout,
    /// The peer (or a forwarder on the path) answered [`Reply::Error`].
    Rejected(String),
    /// Every attempt of a retrying call failed — the retry budget of a
    /// [`crate::RetryPolicy`] is spent. `last` is the final attempt's
    /// failure.
    Exhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The failure of the last attempt.
        last: Box<CallError>,
    },
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Transport(error) => write!(f, "send failed: {error}"),
            CallError::Dropped => {
                write!(f, "the peer dropped the request before answering (crash?)")
            }
            CallError::Timeout => write!(f, "the peer did not reply in time"),
            CallError::Rejected(reason) => write!(f, "the request was rejected: {reason}"),
            CallError::Exhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last: {last}")
            }
        }
    }
}

impl std::error::Error for CallError {}

/// Where a reply crosses back from in-process representation onto a wire.
/// Implemented by the TCP transport's per-connection writers; the channel
/// transport never needs it.
pub trait ReplyWriter: Send + Sync {
    /// Writes `reply` for the request `request_id` back to the requester.
    /// Delivery is best effort: the connection may already be gone.
    fn write_reply(&self, request_id: u64, reply: &Reply);
}

/// Shared state of a fan-in sink: counts the acknowledgements of the
/// constituent puts of a [`Request::PutReplicas`] and answers the original
/// requester once all of them completed (or were dropped).
struct FaninState {
    remaining: usize,
    written: u32,
    failed: u32,
    out: Option<ReplySink>,
}

impl FaninState {
    fn absorb(state: &Arc<Mutex<FaninState>>, ok: bool) {
        let completed = {
            let mut guard = state.lock();
            debug_assert!(guard.remaining > 0, "fan-in over-completed");
            guard.remaining -= 1;
            if ok {
                guard.written += 1;
            } else {
                guard.failed += 1;
            }
            if guard.remaining == 0 {
                guard
                    .out
                    .take()
                    .map(|out| (out, guard.written, guard.failed))
            } else {
                None
            }
        };
        // The final send runs outside the lock: it may itself be a fan-in
        // (or a socket write) and must not re-enter.
        if let Some((out, written, failed)) = completed {
            out.send(Reply::PutsAck { written, failed });
        }
    }
}

/// Interceptor of one reply path, consumed exactly once — either
/// [`ReplyHook::deliver`] fires with the peer's answer or
/// [`ReplyHook::dropped`] fires when the sink is torn down unsent.
/// Middleware (the fault-injecting decorator) uses this to apply faults on
/// the *reverse* link of a request without the peer loop knowing.
pub trait ReplyHook: Send {
    /// The peer answered; the hook decides what happens to the reply.
    fn deliver(self: Box<Self>, reply: Reply);
    /// The sink was dropped unsent — a teardown signal (crash, reap), not a
    /// network frame; hooks are expected to propagate it promptly.
    fn dropped(self: Box<Self>);
}

enum SinkInner {
    /// No one is waiting (lifecycle messages).
    Null,
    /// An in-process caller waiting on a reply channel.
    Channel(Sender<Reply>),
    /// A remote requester: the reply is framed back onto the connection the
    /// request arrived on, tagged with its request id.
    Remote {
        writer: Arc<dyn ReplyWriter>,
        request_id: u64,
    },
    /// One constituent put of a batched [`Request::PutReplicas`].
    Fanin(Arc<Mutex<FaninState>>),
    /// A middleware interceptor wrapping another sink.
    Hooked(Box<dyn ReplyHook>),
}

/// The reply path of one in-flight request. Consume it with
/// [`ReplySink::send`]; a sink dropped unsent signals failure instead of
/// leaving the requester to time out (a channel disconnects, a remote
/// requester receives [`Reply::Error`], a fan-in counts a failed put).
pub struct ReplySink {
    inner: SinkInner,
}

impl fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.inner {
            SinkInner::Null => "Null",
            SinkInner::Channel(_) => "Channel",
            SinkInner::Remote { .. } => "Remote",
            SinkInner::Fanin(_) => "Fanin",
            SinkInner::Hooked(_) => "Hooked",
        };
        write!(f, "ReplySink::{kind}")
    }
}

impl ReplySink {
    /// A sink that discards the reply (for requests that answer no one,
    /// like `Shutdown` and `Crash`).
    pub fn null() -> Self {
        ReplySink {
            inner: SinkInner::Null,
        }
    }

    /// A sink delivering into an in-process reply channel.
    pub fn channel(sender: Sender<Reply>) -> Self {
        ReplySink {
            inner: SinkInner::Channel(sender),
        }
    }

    /// A sink framing the reply back to a remote requester.
    pub fn remote(writer: Arc<dyn ReplyWriter>, request_id: u64) -> Self {
        ReplySink {
            inner: SinkInner::Remote { writer, request_id },
        }
    }

    /// A sink routing the reply (or the teardown signal) through a
    /// middleware hook.
    pub fn hooked(hook: Box<dyn ReplyHook>) -> Self {
        ReplySink {
            inner: SinkInner::Hooked(hook),
        }
    }

    /// Splits `out` into `count` constituent sinks: each receives the
    /// acknowledgement of one put, and once all have completed (a
    /// [`Reply::PutAck`] counts as written, anything else — including being
    /// dropped — as failed) `out` receives one [`Reply::PutsAck`] totalling
    /// them. `count == 0` answers `out` immediately.
    pub fn fanin(count: usize, out: ReplySink) -> Vec<ReplySink> {
        if count == 0 {
            out.send(Reply::PutsAck {
                written: 0,
                failed: 0,
            });
            return Vec::new();
        }
        let state = Arc::new(Mutex::new(FaninState {
            remaining: count,
            written: 0,
            failed: 0,
            out: Some(out),
        }));
        (0..count)
            .map(|_| ReplySink {
                inner: SinkInner::Fanin(Arc::clone(&state)),
            })
            .collect()
    }

    /// Delivers the reply, consuming the sink.
    pub fn send(mut self, reply: Reply) {
        match std::mem::replace(&mut self.inner, SinkInner::Null) {
            SinkInner::Null => {}
            SinkInner::Channel(sender) => {
                let _ = sender.send(reply);
            }
            SinkInner::Remote { writer, request_id } => {
                writer.write_reply(request_id, &reply);
            }
            SinkInner::Fanin(state) => {
                let ok = matches!(reply, Reply::PutAck);
                FaninState::absorb(&state, ok);
            }
            SinkInner::Hooked(hook) => hook.deliver(reply),
        }
    }
}

impl Drop for ReplySink {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.inner, SinkInner::Null) {
            SinkInner::Null => {}
            // Dropping the sender disconnects the caller's reply channel —
            // it observes a prompt `Dropped` instead of a timeout.
            SinkInner::Channel(_sender) => {}
            SinkInner::Remote { writer, request_id } => {
                writer.write_reply(
                    request_id,
                    &Reply::Error {
                        reason: "the request was dropped before being answered".to_string(),
                    },
                );
            }
            SinkInner::Fanin(state) => FaninState::absorb(&state, false),
            SinkInner::Hooked(hook) => hook.dropped(),
        }
    }
}

/// One unit of work delivered to a bound peer: the request, the sink its
/// reply belongs in, and — when the caller sampled the call — the trace
/// context its spans continue under.
#[derive(Debug)]
pub struct Incoming {
    /// The decoded (or in-process) request.
    pub request: Request,
    /// Where the answer must go.
    pub reply: ReplySink,
    /// Distributed-tracing context the request arrived with, if any.
    pub trace: Option<TraceContext>,
    /// When the transport enqueued the request — the start of its
    /// queue-wait span (drain time minus `arrived`).
    pub arrived: Instant,
}

impl Incoming {
    /// Packages a request for a peer's mailbox, stamping the arrival time.
    pub fn new(request: Request, reply: ReplySink, trace: Option<TraceContext>) -> Self {
        Incoming {
            request,
            reply,
            trace,
            arrived: Instant::now(),
        }
    }
}

/// The receive side of a bound peer: a queue of [`Incoming`] work items fed
/// by the transport (mailbox sends, or decoded TCP frames).
#[derive(Debug)]
pub struct Mailbox {
    receiver: Receiver<Incoming>,
}

impl Mailbox {
    /// Wraps a raw receiver (used by transport implementations).
    pub fn new(receiver: Receiver<Incoming>) -> Self {
        Mailbox { receiver }
    }

    /// Blocks for the next work item; `None` when the transport side is
    /// gone (every sender dropped — the peer was unbound).
    pub fn recv(&self) -> Option<Incoming> {
        self.receiver.recv().ok()
    }

    /// Waits up to `timeout` for the next work item; `None` on timeout *or*
    /// closure (a peer that only waits bounded time treats both as "nothing
    /// left to do").
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Incoming> {
        self.receiver.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Incoming> {
        self.receiver.try_recv().ok()
    }
}

/// A send failure that hands the undelivered request (and its reply sink)
/// back to the caller, so forwarding logic can re-route instead of losing
/// the message.
#[derive(Debug)]
pub struct SendRejected {
    /// Why delivery failed.
    pub error: TransportError,
    /// The request that was not delivered.
    pub request: Request,
    /// Its reply path, still unconsumed.
    pub sink: ReplySink,
}

/// Object-safe delivery half of an endpoint; wrapped by [`PeerEndpoint`].
pub trait EndpointImpl: Send + Sync {
    /// Delivers `request`, attaching `sink` as its reply path and `trace`
    /// as the context its spans continue under (propagated on the wire by
    /// the TCP transport, carried in-process by the channel transport).
    ///
    /// The `Err` variant is large on purpose: it carries the undelivered
    /// request and its sink back so forwarding can re-route without
    /// cloning every message on the happy path (`TraceContext` is `Copy`,
    /// so the caller still holds the trace on rejection).
    #[allow(clippy::result_large_err)]
    fn deliver(
        &self,
        request: Request,
        sink: ReplySink,
        trace: Option<TraceContext>,
    ) -> Result<(), SendRejected>;
}

/// A reply being awaited. Produced by [`PeerEndpoint::send`]; redeemed with
/// [`PendingReply::wait`]. Dropping it abandons the request (a late reply
/// is discarded by the transport).
#[derive(Debug)]
pub struct PendingReply {
    receiver: Receiver<Reply>,
}

impl PendingReply {
    /// Blocks until the reply arrives, the reply path is torn down, or
    /// `timeout` elapses.
    pub fn wait(self, timeout: Duration) -> Result<Reply, CallError> {
        match self.receiver.recv_timeout(timeout) {
            Ok(Reply::Error { reason }) => Err(CallError::Rejected(reason)),
            Ok(reply) => Ok(reply),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(CallError::Timeout),
            Err(_) => Err(CallError::Dropped),
        }
    }

    /// Blocks until the reply arrives or its path is torn down — **no
    /// clock**. Membership coordination waits this way: a deadline could
    /// race a slow-but-alive peer into committing after the coordinator
    /// already gave up, whereas a disconnect is unambiguous (every
    /// transport tears the reply path down when the peer stops).
    pub fn wait_unbounded(self) -> Result<Reply, CallError> {
        match self.receiver.recv() {
            Ok(Reply::Error { reason }) => Err(CallError::Rejected(reason)),
            Ok(reply) => Ok(reply),
            Err(_) => Err(CallError::Dropped),
        }
    }
}

/// A cheap, cloneable handle for sending requests to one peer and awaiting
/// replies matched by request id — identical over channels and TCP. This is
/// the **only** way to talk to a peer; the pre-transport direct-mailbox
/// plumbing (`Sender<Request>` with an embedded reply channel) is gone.
#[derive(Clone)]
pub struct PeerEndpoint {
    inner: Arc<dyn EndpointImpl>,
}

impl fmt::Debug for PeerEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PeerEndpoint")
    }
}

impl PeerEndpoint {
    /// Wraps a transport-specific delivery implementation.
    pub fn new(inner: Arc<dyn EndpointImpl>) -> Self {
        PeerEndpoint { inner }
    }

    /// Delivers `request` with an explicit reply sink — the relay primitive
    /// forwarding is built on. On failure the request and sink come back in
    /// the [`SendRejected`] (a deliberately large `Err`: returning the
    /// message avoids cloning it on every successful send).
    #[allow(clippy::result_large_err)]
    pub fn send_with_sink(&self, request: Request, sink: ReplySink) -> Result<(), SendRejected> {
        self.inner.deliver(request, sink, None)
    }

    /// [`PeerEndpoint::send_with_sink`] with a trace context propagated to
    /// the receiving peer.
    #[allow(clippy::result_large_err)]
    pub fn send_with_sink_traced(
        &self,
        request: Request,
        sink: ReplySink,
        trace: Option<TraceContext>,
    ) -> Result<(), SendRejected> {
        self.inner.deliver(request, sink, trace)
    }

    /// Sends `request` and returns a handle on the awaited reply.
    pub fn send(&self, request: Request) -> Result<PendingReply, TransportError> {
        self.send_traced(request, None)
    }

    /// [`PeerEndpoint::send`] with a trace context propagated to the
    /// receiving peer.
    pub fn send_traced(
        &self,
        request: Request,
        trace: Option<TraceContext>,
    ) -> Result<PendingReply, TransportError> {
        let (tx, rx) = bounded(1);
        self.send_with_sink_traced(request, ReplySink::channel(tx), trace)
            .map_err(|rejected| rejected.error)?;
        Ok(PendingReply { receiver: rx })
    }

    /// Sends a request that expects no answer (`Shutdown`, `Crash`).
    pub fn send_no_reply(&self, request: Request) -> Result<(), TransportError> {
        self.send_with_sink(request, ReplySink::null())
            .map_err(|rejected| rejected.error)
    }

    /// Sends `request` and waits up to `timeout` for its reply.
    pub fn call(&self, request: Request, timeout: Duration) -> Result<Reply, CallError> {
        self.call_traced(request, timeout, None)
    }

    /// [`PeerEndpoint::call`] with a trace context propagated to the
    /// receiving peer.
    pub fn call_traced(
        &self,
        request: Request,
        timeout: Duration,
        trace: Option<TraceContext>,
    ) -> Result<Reply, CallError> {
        let pending = self
            .send_traced(request, trace)
            .map_err(CallError::Transport)?;
        pending.wait(timeout)
    }
}

/// How requests travel between peers: per-peer addressing with a bind /
/// connect split (the trait's `bind`/`endpoint` are the accept/connect
/// halves; [`Mailbox::recv`] and [`PeerEndpoint::send`] are recv/send).
pub trait Transport: Send + Sync + 'static {
    /// Binds the receive side of `peer`: registers it with the transport
    /// and returns the queue its requests arrive on. Binding an id again
    /// (a restart) replaces the previous registration.
    fn bind(&self, peer: PeerId) -> Result<Mailbox, TransportError>;

    /// An endpoint addressing `peer`. Resolution only requires the peer to
    /// be *registered* (bound, or address-configured for TCP) — liveness is
    /// discovered by sending.
    fn endpoint(&self, peer: PeerId) -> Result<PeerEndpoint, TransportError>;

    /// Tears down `peer`'s receive side: closes its listener/connections so
    /// senders observe failure instead of silence. Called by the peer
    /// thread on exit (crash, shutdown or forwarder reap).
    fn unbind(&self, peer: PeerId);
}

// ---------------------------------------------------------------------------
// ChannelTransport
// ---------------------------------------------------------------------------

struct ChannelEndpoint {
    sender: Sender<Incoming>,
}

impl EndpointImpl for ChannelEndpoint {
    fn deliver(
        &self,
        request: Request,
        sink: ReplySink,
        trace: Option<TraceContext>,
    ) -> Result<(), SendRejected> {
        self.sender
            .send(Incoming::new(request, sink, trace))
            .map_err(|failed| {
                let incoming = failed.0;
                SendRejected {
                    error: TransportError::Closed,
                    request: incoming.request,
                    sink: incoming.reply,
                }
            })
    }
}

/// The in-process transport: every bound peer is a mailbox in a shared
/// registry, endpoints are channel senders, and delivery is a lock-free
/// queue push. Keeps the whole existing test suite and the simulator
/// deterministic and fast — no serialization, no sockets, no threads beyond
/// the peers themselves.
#[derive(Default)]
pub struct ChannelTransport {
    registry: Mutex<HashMap<u64, Sender<Incoming>>>,
}

impl ChannelTransport {
    /// An empty mesh.
    pub fn new() -> Self {
        ChannelTransport::default()
    }
}

impl Transport for ChannelTransport {
    fn bind(&self, peer: PeerId) -> Result<Mailbox, TransportError> {
        let (sender, receiver) = unbounded();
        self.registry.lock().insert(peer.0, sender);
        Ok(Mailbox::new(receiver))
    }

    fn endpoint(&self, peer: PeerId) -> Result<PeerEndpoint, TransportError> {
        let sender = self
            .registry
            .lock()
            .get(&peer.0)
            .cloned()
            .ok_or(TransportError::UnknownPeer(peer.0))?;
        Ok(PeerEndpoint::new(Arc::new(ChannelEndpoint { sender })))
    }

    fn unbind(&self, peer: PeerId) {
        self.registry.lock().remove(&peer.0);
    }
}
