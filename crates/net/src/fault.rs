//! Fault-injecting transport middleware: [`FaultyTransport`] wraps any
//! [`Transport`] backend and applies a deterministic, seeded [`FaultPlan`]
//! per **directed link** — drop probability, added latency (fixed +
//! jittered), duplication, and named partitions that can be healed mid-run.
//!
//! The decorator sits on the *send* path: every frame (a request towards a
//! peer, and — through a [`ReplyHook`] — the reply travelling back) rolls
//! the link's faults before it reaches the real transport.
//!
//! * A **dropped** frame vanishes silently: its reply sink is parked in a
//!   bounded black hole instead of being dropped, so the sender observes a
//!   *timeout* (exactly what a lossy network produces), never the prompt
//!   teardown signal an honest crash produces.
//! * A **delayed** frame is handed to a timer thread and delivered when its
//!   deadline passes; the sender returns immediately, as a real kernel send
//!   buffer would.
//! * A **duplicated** frame is delivered a second time with a null reply
//!   sink — on a real wire the duplicate carries the same request id and
//!   its reply is discarded by the demultiplexer, which is what the null
//!   sink models. Duplicates are what the peers' dedup window exists for.
//! * A **partition** separates two named sets of ends in both directions
//!   until [`FaultPlan::heal`] is called; partitioned frames count as drops.
//!
//! Every directed link owns its own [`rand::rngs::StdRng`] seeded from the
//! plan seed and the link identity, so a single-threaded workload replays
//! the exact same fault sequence for a given seed, and per-link counters
//! ([`LinkCounters`]) make loss observable for assertions.
//!
//! Lifecycle requests ([`Request::Shutdown`], [`Request::Crash`]) are
//! exempt: they model operator actions on the process, not network frames —
//! dropping a `Shutdown` would hang cluster teardown forever without
//! exercising any protocol path.

use std::cell::Cell;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdht_metrics::{Counter, Registry};

use crate::cluster::PeerId;
use crate::message::{Reply, Request};
use crate::transport::{
    Mailbox, PeerEndpoint, ReplyHook, ReplySink, SendRejected, Transport, TransportError,
};

/// How many black-holed reply sinks are parked before the oldest is let go.
/// A released sink signals `Dropped` to a caller that timed out long ago —
/// harmless — while the bound keeps an unbounded-loss run from leaking one
/// sink per dropped frame.
const BLACK_HOLE_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// Link identity
// ---------------------------------------------------------------------------

thread_local! {
    /// The peer id the current thread sends *as*. Peer threads register
    /// themselves on spawn; anything unregistered (test harnesses, client
    /// threads) sends as [`End::Client`].
    static LINK_SOURCE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Marks the calling thread as sending on behalf of `peer`: frames it
/// originates are attributed to the directed link `Peer(peer) -> dst`.
pub fn set_thread_source(peer: PeerId) {
    LINK_SOURCE.with(|source| source.set(Some(peer.0)));
}

fn current_source() -> End {
    LINK_SOURCE
        .with(|source| source.get())
        .map(End::Peer)
        .unwrap_or(End::Client)
}

/// One end of a directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum End {
    /// Any client handle (clients are not ring members and share one end).
    Client,
    /// The peer with this ring id.
    Peer(u64),
}

impl fmt::Display for End {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            End::Client => write!(f, "client"),
            End::Peer(id) => write!(f, "peer {id:016x}"),
        }
    }
}

fn link_seed(plan_seed: u64, from: End, to: End) -> u64 {
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    fn end_word(end: End) -> u64 {
        match end {
            End::Client => 0x434c_4945_4e54_0000,
            End::Peer(id) => id,
        }
    }
    mix(plan_seed ^ mix(end_word(from)).rotate_left(17) ^ mix(end_word(to)))
}

// ---------------------------------------------------------------------------
// Fault configuration
// ---------------------------------------------------------------------------

/// The faults applied to one directed link (or, as the plan default, to
/// every link without an override).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a frame is silently dropped.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a frame is delivered twice.
    pub duplicate_probability: f64,
    /// Fixed latency added to every frame.
    pub delay: Duration,
    /// Extra uniformly-jittered latency in `[0, jitter)` on top of `delay`.
    pub jitter: Duration,
}

impl LinkFaults {
    /// A link that drops each frame with probability `p`.
    pub fn lossy(p: f64) -> Self {
        LinkFaults {
            drop_probability: p,
            ..LinkFaults::default()
        }
    }

    /// A link that duplicates each frame with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        LinkFaults {
            duplicate_probability: p,
            ..LinkFaults::default()
        }
    }

    /// A link adding `delay` plus up to `jitter` of uniform extra latency.
    pub fn delayed(delay: Duration, jitter: Duration) -> Self {
        LinkFaults {
            delay,
            jitter,
            ..LinkFaults::default()
        }
    }

    fn is_clean(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.delay.is_zero()
            && self.jitter.is_zero()
    }
}

/// Per-directed-link delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Frames passed through to the real transport (delayed and duplicated
    /// frames count here too once they go out).
    pub frames_delivered: u64,
    /// Frames silently dropped (including partitioned frames).
    pub frames_dropped: u64,
    /// Frames held back by the latency model before delivery.
    pub frames_delayed: u64,
    /// Frames delivered a second time.
    pub frames_duplicated: u64,
}

/// A snapshot of everything the plan has done so far.
#[derive(Clone, Debug, Default)]
pub struct FaultStats {
    /// Totals across every link.
    pub totals: LinkCounters,
    /// Per-directed-link counters, sorted by link for determinism.
    pub per_link: Vec<((End, End), LinkCounters)>,
}

struct PartitionState {
    a: Vec<End>,
    b: Vec<End>,
    active: bool,
}

impl PartitionState {
    fn separates(&self, from: End, to: End) -> bool {
        self.active
            && ((self.a.contains(&from) && self.b.contains(&to))
                || (self.b.contains(&from) && self.a.contains(&to)))
    }
}

enum Decision {
    Drop,
    Deliver {
        delay: Option<Duration>,
        duplicate: bool,
    },
}

struct PlanState {
    default_link: LinkFaults,
    links: HashMap<(End, End), LinkFaults>,
    partitions: HashMap<String, PartitionState>,
    rngs: HashMap<(End, End), StdRng>,
    counters: HashMap<(End, End), LinkCounters>,
    /// Sinks of dropped frames, parked so their senders time out instead of
    /// observing a prompt (and dishonest) teardown signal.
    black_hole: VecDeque<ReplySink>,
}

/// The plan-wide totals, kept as registry-grade [`Counter`] handles: the
/// same atomics [`FaultPlan::stats`] snapshots can be registered into a
/// peer's metrics registry ([`FaultPlan::register_metrics`]) — one storage
/// location, whichever way it is read.
struct Totals {
    delivered: Counter,
    dropped: Counter,
    delayed: Counter,
    duplicated: Counter,
}

struct PlanInner {
    seed: u64,
    state: Mutex<PlanState>,
    totals: Totals,
    scheduler: Scheduler,
}

/// A deterministic, seeded fault schedule shared by every endpoint of a
/// [`FaultyTransport`]. Cloning is cheap and shares the plan (and its
/// counters); the simulator reuses the same type to model message loss.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("FaultPlan")
            .field("seed", &self.inner.seed)
            .field("default_link", &state.default_link)
            .field("link_overrides", &state.links.len())
            .field("partitions", &state.partitions.len())
            .finish()
    }
}

impl FaultPlan {
    /// An empty plan (no faults anywhere) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                state: Mutex::new(PlanState {
                    default_link: LinkFaults::default(),
                    links: HashMap::new(),
                    partitions: HashMap::new(),
                    rngs: HashMap::new(),
                    counters: HashMap::new(),
                    black_hole: VecDeque::new(),
                }),
                totals: Totals {
                    delivered: Counter::new(),
                    dropped: Counter::new(),
                    delayed: Counter::new(),
                    duplicated: Counter::new(),
                },
                scheduler: Scheduler::new(),
            }),
        }
    }

    /// Applies `faults` to every link without a per-link override.
    pub fn with_all_links(self, faults: LinkFaults) -> Self {
        self.inner.state.lock().default_link = faults;
        self
    }

    /// Overrides the faults of one directed link.
    pub fn with_link(self, from: End, to: End, faults: LinkFaults) -> Self {
        self.inner.state.lock().links.insert((from, to), faults);
        self
    }

    /// Canned plan: every link drops each frame with probability `p`.
    pub fn lossy(seed: u64, p: f64) -> Self {
        FaultPlan::new(seed).with_all_links(LinkFaults::lossy(p))
    }

    /// Canned plan: every link duplicates frames aggressively (30%).
    pub fn dup_heavy(seed: u64) -> Self {
        FaultPlan::new(seed).with_all_links(LinkFaults::duplicating(0.3))
    }

    /// Canned plan: every link adds `delay` with up to the same amount of
    /// uniform jitter on top.
    pub fn jittered_latency(seed: u64, delay: Duration) -> Self {
        FaultPlan::new(seed).with_all_links(LinkFaults::delayed(delay, delay))
    }

    /// Installs (and activates) a named partition separating the ends in
    /// `a` from the ends in `b`, both directions. Frames crossing an active
    /// partition are dropped. Re-installing a name replaces it.
    pub fn partition(&self, name: impl Into<String>, a: Vec<End>, b: Vec<End>) {
        self.inner
            .state
            .lock()
            .partitions
            .insert(name.into(), PartitionState { a, b, active: true });
    }

    /// Heals a named partition mid-run: frames cross again from now on.
    /// Unknown names are a no-op.
    pub fn heal(&self, name: &str) {
        if let Some(partition) = self.inner.state.lock().partitions.get_mut(name) {
            partition.active = false;
        }
    }

    /// Whether an active partition currently separates `from` and `to`.
    pub fn is_partitioned(&self, from: End, to: End) -> bool {
        self.inner
            .state
            .lock()
            .partitions
            .values()
            .any(|partition| partition.separates(from, to))
    }

    /// Rolls only the drop fault of the directed link `from -> to`. This is
    /// the hook the simulator uses: it models loss as a failed operation
    /// (latency is priced by its own network model), so only the drop
    /// decision matters. Counters are updated exactly as for a real frame.
    pub fn roll_drop(&self, from: End, to: End) -> bool {
        matches!(self.decide(from, to), Decision::Drop)
    }

    /// A snapshot of the per-link and total counters.
    pub fn stats(&self) -> FaultStats {
        let state = self.inner.state.lock();
        let mut per_link: Vec<((End, End), LinkCounters)> = state
            .counters
            .iter()
            .map(|(link, counters)| (*link, *counters))
            .collect();
        per_link.sort_by_key(|(link, _)| *link);
        FaultStats {
            totals: LinkCounters {
                frames_delivered: self.inner.totals.delivered.get(),
                frames_dropped: self.inner.totals.dropped.get(),
                frames_delayed: self.inner.totals.delayed.get(),
                frames_duplicated: self.inner.totals.duplicated.get(),
            },
            per_link,
        }
    }

    /// Registers the plan-wide totals into a metrics registry as shared
    /// handles: the registry series and [`FaultPlan::stats`] read the same
    /// atomics, so the two surfaces can never disagree. Totals are
    /// plan-wide — on a cluster with one plan, every peer's exposition
    /// mirrors the same values.
    pub fn register_metrics(&self, registry: &Registry, labels: &[(&str, &str)]) {
        use crate::metrics::names;
        registry.register_counter(
            names::FAULT_DELIVERED,
            "frames the fault plan passed through to the real transport",
            labels,
            self.inner.totals.delivered.clone(),
        );
        registry.register_counter(
            names::FAULT_DROPPED,
            "frames the fault plan silently dropped (including partitions)",
            labels,
            self.inner.totals.dropped.clone(),
        );
        registry.register_counter(
            names::FAULT_DELAYED,
            "frames the fault plan held back before delivery",
            labels,
            self.inner.totals.delayed.clone(),
        );
        registry.register_counter(
            names::FAULT_DUPLICATED,
            "frames the fault plan delivered a second time",
            labels,
            self.inner.totals.duplicated.clone(),
        );
    }

    fn decide(&self, from: End, to: End) -> Decision {
        let mut state = self.inner.state.lock();
        let link = (from, to);
        if state
            .partitions
            .values()
            .any(|partition| partition.separates(from, to))
        {
            state.counters.entry(link).or_default().frames_dropped += 1;
            self.inner.totals.dropped.inc();
            return Decision::Drop;
        }
        let faults = *state.links.get(&link).unwrap_or(&state.default_link);
        if faults.is_clean() {
            state.counters.entry(link).or_default().frames_delivered += 1;
            self.inner.totals.delivered.inc();
            return Decision::Deliver {
                delay: None,
                duplicate: false,
            };
        }
        let seed = link_seed(self.inner.seed, from, to);
        let rng = state
            .rngs
            .entry(link)
            .or_insert_with(|| StdRng::seed_from_u64(seed));
        if faults.drop_probability > 0.0 && rng.gen_bool(faults.drop_probability.min(1.0)) {
            state.counters.entry(link).or_default().frames_dropped += 1;
            self.inner.totals.dropped.inc();
            return Decision::Drop;
        }
        let duplicate = faults.duplicate_probability > 0.0
            && rng.gen_bool(faults.duplicate_probability.min(1.0));
        let delay = if faults.delay.is_zero() && faults.jitter.is_zero() {
            None
        } else {
            let jitter = faults.jitter.mul_f64(rng.gen::<f64>());
            Some(faults.delay + jitter)
        };
        let counters = state.counters.entry(link).or_default();
        counters.frames_delivered += 1;
        self.inner.totals.delivered.inc();
        if duplicate {
            counters.frames_duplicated += 1;
            self.inner.totals.duplicated.inc();
        }
        if delay.is_some() {
            counters.frames_delayed += 1;
            self.inner.totals.delayed.inc();
        }
        Decision::Deliver { delay, duplicate }
    }

    /// Parks the sink of a dropped frame so its sender observes silence
    /// (then a timeout), not the prompt teardown a real crash produces.
    fn black_hole(&self, sink: ReplySink) {
        let evicted = {
            let mut state = self.inner.state.lock();
            state.black_hole.push_back(sink);
            if state.black_hole.len() > BLACK_HOLE_CAPACITY {
                state.black_hole.pop_front()
            } else {
                None
            }
        };
        // The evicted sink is dropped *outside* the lock: its drop path may
        // complete a fan-in whose outer sink re-enters this plan.
        drop(evicted);
    }

    fn scheduler(&self) -> &Scheduler {
        &self.inner.scheduler
    }
}

// ---------------------------------------------------------------------------
// Delay scheduler
// ---------------------------------------------------------------------------

struct Delayed {
    at: Instant,
    seq: u64,
    action: Box<dyn FnOnce() + Send>,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // on top.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct SchedulerQueue {
    items: BinaryHeap<Delayed>,
    next_seq: u64,
    running: bool,
    stop: bool,
}

struct SchedulerShared {
    queue: StdMutex<SchedulerQueue>,
    wake: Condvar,
}

/// A single lazily-started timer thread delivering delayed frames when
/// their deadline passes. Std primitives (not `parking_lot`) because the
/// loop needs a condition variable with timeouts.
struct Scheduler {
    shared: Arc<SchedulerShared>,
}

/// Scheduler lock with poison recovery. Actions run outside the lock, so
/// poison means a panic mid-push or mid-pop; the queue state itself is
/// still coherent (BinaryHeap operations are panic-safe). Recover and log
/// instead of cascading the panic through every delivery thread.
fn recover_poison<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(|poisoned| {
        rdht_metrics::log::global().warn("net.fault", "scheduler mutex poisoned; recovering", &[]);
        poisoned.into_inner()
    })
}

impl Scheduler {
    fn new() -> Self {
        Scheduler {
            shared: Arc::new(SchedulerShared {
                queue: StdMutex::new(SchedulerQueue::default()),
                wake: Condvar::new(),
            }),
        }
    }

    fn schedule(&self, delay: Duration, action: Box<dyn FnOnce() + Send>) {
        let at = Instant::now() + delay;
        let mut queue = recover_poison(self.shared.queue.lock());
        if queue.stop {
            // Teardown raced a late frame: the frame is lost, its sink's
            // drop signals the sender.
            return;
        }
        let seq = queue.next_seq;
        queue.next_seq += 1;
        queue.items.push(Delayed { at, seq, action });
        if !queue.running {
            queue.running = true;
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || Scheduler::run(shared));
        }
        drop(queue);
        self.shared.wake.notify_one();
    }

    fn run(shared: Arc<SchedulerShared>) {
        loop {
            let action = {
                let mut queue = recover_poison(shared.queue.lock());
                loop {
                    if queue.stop {
                        return;
                    }
                    let now = Instant::now();
                    match queue.items.peek() {
                        None => {
                            queue = recover_poison(shared.wake.wait(queue));
                        }
                        Some(head) if head.at <= now => {
                            break queue.items.pop().expect("peeked item").action;
                        }
                        Some(head) => {
                            let wait = head.at - now;
                            queue = recover_poison(
                                shared
                                    .wake
                                    .wait_timeout(queue, wait)
                                    .map(|(guard, _timeout)| guard)
                                    .map_err(|p| {
                                        let (guard, _timeout) = p.into_inner();
                                        std::sync::PoisonError::new(guard)
                                    }),
                            );
                        }
                    }
                }
            };
            // Delivery runs outside the lock: it may itself roll faults.
            action();
        }
    }
}

impl Drop for PlanInner {
    fn drop(&mut self) {
        if let Ok(mut queue) = self.scheduler.shared.queue.lock() {
            queue.stop = true;
            queue.items.clear();
        }
        self.scheduler.shared.wake.notify_all();
    }
}

// ---------------------------------------------------------------------------
// The transport decorator
// ---------------------------------------------------------------------------

/// A [`Transport`] decorator applying a [`FaultPlan`] to every frame sent
/// through endpoints it resolves. The receive side (`bind`) is untouched —
/// faults happen on the wire, not in the mailbox.
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport { inner, plan }
    }

    /// The plan frames are rolled against (shared: counters and partitions
    /// observed through this handle reflect live traffic).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

// Delegation for trait objects and smart pointers, so a dynamically
// selected backend (`Arc<dyn Transport>`) can be decorated too.
impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn bind(&self, peer: PeerId) -> Result<Mailbox, TransportError> {
        (**self).bind(peer)
    }
    fn endpoint(&self, peer: PeerId) -> Result<PeerEndpoint, TransportError> {
        (**self).endpoint(peer)
    }
    fn unbind(&self, peer: PeerId) {
        (**self).unbind(peer)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn bind(&self, peer: PeerId) -> Result<Mailbox, TransportError> {
        self.inner.bind(peer)
    }

    fn endpoint(&self, peer: PeerId) -> Result<PeerEndpoint, TransportError> {
        let inner = self.inner.endpoint(peer)?;
        Ok(PeerEndpoint::new(Arc::new(FaultyEndpoint {
            inner,
            dst: peer.0,
            plan: self.plan.clone(),
        })))
    }

    fn unbind(&self, peer: PeerId) {
        self.inner.unbind(peer)
    }
}

struct FaultyEndpoint {
    inner: PeerEndpoint,
    dst: u64,
    plan: FaultPlan,
}

impl crate::transport::EndpointImpl for FaultyEndpoint {
    fn deliver(
        &self,
        request: Request,
        sink: ReplySink,
        trace: Option<rdht_metrics::TraceContext>,
    ) -> Result<(), SendRejected> {
        // Lifecycle messages are operator actions, not network frames.
        if matches!(request, Request::Shutdown | Request::Crash) {
            return self.inner.send_with_sink_traced(request, sink, trace);
        }
        let from = current_source();
        let to = End::Peer(self.dst);
        // The reply crosses the reverse link: wrap the sink so the peer's
        // answer rolls `to -> from` faults on its way back.
        let sink = ReplySink::hooked(Box::new(FaultReplyHook {
            sink: Some(sink),
            plan: self.plan.clone(),
            from: to,
            to: from,
        }));
        match self.plan.decide(from, to) {
            Decision::Drop => {
                self.plan.black_hole(sink);
                Ok(())
            }
            Decision::Deliver { delay, duplicate } => {
                if duplicate {
                    // The duplicate carries the same frame (trace context
                    // included); its reply is discarded by the request-id
                    // demux, modelled by a null sink. Best effort: a dead
                    // peer loses the duplicate.
                    let _ =
                        self.inner
                            .send_with_sink_traced(request.clone(), ReplySink::null(), trace);
                }
                match delay {
                    None => self.inner.send_with_sink_traced(request, sink, trace),
                    Some(wait) => {
                        let target = self.inner.clone();
                        self.plan.scheduler().schedule(
                            wait,
                            Box::new(move || {
                                // A rejection at fire time drops the sink:
                                // the sender gets the prompt teardown it
                                // would have got from an immediate send.
                                let _ = target.send_with_sink_traced(request, sink, trace);
                            }),
                        );
                        Ok(())
                    }
                }
            }
        }
    }
}

struct FaultReplyHook {
    sink: Option<ReplySink>,
    plan: FaultPlan,
    from: End,
    to: End,
}

impl ReplyHook for FaultReplyHook {
    fn deliver(mut self: Box<Self>, reply: Reply) {
        let sink = self.sink.take().expect("hook consumed once");
        match self.plan.decide(self.from, self.to) {
            Decision::Drop => self.plan.black_hole(sink),
            Decision::Deliver { delay, .. } => {
                // A duplicated reply frame is counted by decide() but cannot
                // be delivered twice — the requester's demux (a one-shot
                // channel) discards it, so there is nothing more to model.
                match delay {
                    None => sink.send(reply),
                    Some(wait) => self
                        .plan
                        .scheduler()
                        .schedule(wait, Box::new(move || sink.send(reply))),
                }
            }
        }
    }

    fn dropped(mut self: Box<Self>) {
        // Teardown is a local signal (the peer unbound / crashed), not a
        // frame: propagate promptly so callers see the honest `Dropped`.
        drop(self.sink.take());
    }
}
