//! [`TcpTransport`]: the wire codec over real sockets.
//!
//! Every bound peer owns a `TcpListener` plus an acceptor thread; each
//! accepted connection gets a reader thread that decodes length-framed
//! request envelopes ([`crate::wire`]) and queues them on the peer's
//! [`Mailbox`], with a [`ReplySink`] that frames the reply back onto the
//! same connection tagged with the request id — so one connection carries
//! any number of interleaved in-flight requests (replies need not come back
//! in order; the id does the matching).
//!
//! The connect side keeps a **connection pool** keyed by remote address:
//! every endpoint created from one transport instance shares it, so a
//! client (or a forwarding peer) reuses one TCP connection per destination
//! instead of dialling per request. A pooled connection that fails is
//! evicted and re-dialled once per send; replies pending on it complete
//! with a typed error instead of a timeout.
//!
//! Addresses live in an address **book** (`PeerId -> SocketAddr`). In a
//! single process [`Transport::bind`] fills it with OS-assigned loopback
//! ports; across processes ([`crate::serve_tcp_peer`] /
//! [`crate::ClusterClient::connect_tcp`]) every process is configured with
//! the same static book. Endpoints resolve the book at *send* time, so a
//! peer that restarts on a new port keeps working without re-creating
//! endpoints.
//!
//! A connection that sends garbage — an oversized length prefix, an unknown
//! version or tag, a truncated body — is dropped at the first bad frame
//! (the error is typed all the way: see [`crate::WireError`]); the peer and
//! every other connection stay live.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use rdht_metrics::TraceContext;

use crate::cluster::PeerId;
use crate::message::Reply;
use crate::transport::{
    EndpointImpl, Incoming, Mailbox, PeerEndpoint, ReplySink, ReplyWriter, SendRejected, Transport,
    TransportError,
};
use crate::wire::{decode_payload, encode_reply, encode_request, read_frame, Envelope, FrameError};
use crate::Request;

/// How long a dial may take before the send is failed. Loopback dials to a
/// dead port fail immediately (connection refused); this bounds dials that
/// hang (e.g. a firewalled address).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Total redial budget of one delivery: after the free retry against a
/// fresh connection, further dials (with capped exponential backoff,
/// re-resolving the address book each time) run until this deadline. Long
/// enough to ride out a peer restarting mid-stream — even onto a new port —
/// short enough that a send to a peer that is really gone still fails as a
/// prompt typed error rather than a client-timeout-sized hang.
const REDIAL_DEADLINE: Duration = Duration::from_secs(2);

/// First redial backoff; doubles per redial up to [`REDIAL_BACKOFF_CAP`].
const REDIAL_BACKOFF_START: Duration = Duration::from_millis(5);

/// Cap on the redial backoff.
const REDIAL_BACKOFF_CAP: Duration = Duration::from_millis(200);

/// The write half of an accepted connection, shared by every in-flight
/// request that arrived on it. Replies are framed under the lock so
/// concurrent repliers (batch acknowledgements, forwarded requests
/// completing out of order) never interleave bytes.
struct ServerConnWriter {
    stream: Mutex<TcpStream>,
}

impl ReplyWriter for ServerConnWriter {
    fn write_reply(&self, request_id: u64, reply: &Reply) {
        let frame = encode_reply(request_id, reply);
        let mut stream = self.stream.lock();
        // Best effort: the requester may already be gone. A failed reply
        // write is indistinguishable from a requester that disconnected —
        // it is *their* reply, no one else's state is affected.
        let _ = stream.write_all(&frame);
    }
}

/// One pooled outgoing connection: a locked writer, the request-id
/// allocator and the table of reply sinks awaiting matching reply frames.
struct Connection {
    stream: Mutex<TcpStream>,
    next_id: AtomicU64,
    /// `None` once the connection died and its pending sinks were drained.
    pending: Mutex<Option<HashMap<u64, ReplySink>>>,
    dead: AtomicBool,
}

impl Connection {
    /// Marks the connection dead and completes every pending reply with a
    /// drop (each sink's drop path signals the caller promptly).
    fn fail_pending(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let drained = self.pending.lock().take();
        // Sinks are dropped outside the lock: a drop may itself write (a
        // relayed reply) or lock another connection.
        drop(drained);
    }
}

/// A bound peer's accept side.
struct ListenerState {
    addr: SocketAddr,
    closing: Arc<AtomicBool>,
    /// Accepted connections, kept so unbind can shut them down and unblock
    /// their reader threads.
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

#[derive(Default)]
struct TcpInner {
    /// Per-peer addresses; filled by `bind` (OS-assigned ports) or
    /// preconfigured for multi-process deployments.
    book: Mutex<HashMap<u64, SocketAddr>>,
    listeners: Mutex<HashMap<u64, ListenerState>>,
    /// Outgoing connections shared by every endpoint of this transport.
    pool: Mutex<HashMap<SocketAddr, Arc<Connection>>>,
}

/// The socket transport. See the module docs for the threading and pooling
/// model. Cloning shares the address book, listeners and connection pool.
#[derive(Clone, Default)]
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl TcpTransport {
    /// A transport with an empty address book: `bind` assigns loopback
    /// ports, `endpoint` works for every peer bound or registered since.
    pub fn new() -> Self {
        TcpTransport::default()
    }

    /// A transport preloaded with a static address book — the
    /// multi-process deployment form, where every process must agree on
    /// where each peer listens.
    pub fn with_peers(peers: impl IntoIterator<Item = (PeerId, SocketAddr)>) -> Self {
        let transport = TcpTransport::new();
        {
            let mut book = transport.inner.book.lock();
            for (peer, addr) in peers {
                book.insert(peer.0, addr);
            }
        }
        transport
    }

    /// Registers (or overrides) the address of one peer.
    pub fn set_addr(&self, peer: PeerId, addr: SocketAddr) {
        self.inner.book.lock().insert(peer.0, addr);
    }

    /// The address `peer` is known under, if any.
    pub fn addr_of(&self, peer: PeerId) -> Option<SocketAddr> {
        self.inner.book.lock().get(&peer.0).copied()
    }

    /// Dials `addr` (bounded by `connect_timeout`), or reuses the pooled
    /// connection to it.
    fn connection_to(
        &self,
        addr: SocketAddr,
        connect_timeout: Duration,
    ) -> Result<Arc<Connection>, TransportError> {
        {
            let pool = self.inner.pool.lock();
            if let Some(conn) = pool.get(&addr) {
                if !conn.dead.load(Ordering::SeqCst) {
                    return Ok(Arc::clone(conn));
                }
            }
        }
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)
            .map_err(|error| TransportError::Io(format!("dial {addr}: {error}")))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|error| TransportError::Io(format!("clone stream to {addr}: {error}")))?;
        let conn = Arc::new(Connection {
            stream: Mutex::new(stream),
            next_id: AtomicU64::new(1),
            pending: Mutex::new(Some(HashMap::new())),
            dead: AtomicBool::new(false),
        });
        {
            let mut pool = self.inner.pool.lock();
            // Another thread may have raced us here; last-in wins and the
            // loser's connection simply serves the requests already bound
            // to it until it idles out with the process.
            pool.insert(addr, Arc::clone(&conn));
        }
        let inner = Arc::clone(&self.inner);
        let demux = Arc::clone(&conn);
        std::thread::spawn(move || {
            let mut reader = reader;
            while let Ok(Some(payload)) = read_frame(&mut reader) {
                match decode_payload(&payload) {
                    Ok(Envelope::Reply { request_id, reply }) => {
                        let sink = demux
                            .pending
                            .lock()
                            .as_mut()
                            .and_then(|pending| pending.remove(&request_id));
                        if let Some(sink) = sink {
                            sink.send(reply);
                        }
                    }
                    // A request on a connection we dialled is protocol
                    // misuse; drop the connection.
                    Ok(Envelope::Request { .. }) => break,
                    Err(error) => {
                        rdht_metrics::log::global().warn(
                            "net.tcp",
                            "dropping dialled connection on a bad frame",
                            &[
                                ("peer", &addr.to_string()),
                                ("error", error.variant()),
                                ("detail", &error.to_string()),
                            ],
                        );
                        break;
                    }
                }
            }
            demux.fail_pending();
            let mut pool = inner.pool.lock();
            if let Some(current) = pool.get(&addr) {
                if Arc::ptr_eq(current, &demux) {
                    pool.remove(&addr);
                }
            }
        });
        Ok(conn)
    }

    /// One delivery attempt over `conn`. On failure the sink is recovered
    /// from the pending table (unless the reader already drained it, in
    /// which case its drop has signalled the caller).
    fn try_send(
        conn: &Arc<Connection>,
        request: &Request,
        sink: ReplySink,
        trace: Option<TraceContext>,
    ) -> Result<(), Option<ReplySink>> {
        // relaxed: the id needs only RMW uniqueness; the pending-table
        // mutex below is what orders the insert against the reader.
        let request_id = conn.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut pending = conn.pending.lock();
            match pending.as_mut() {
                Some(pending) => {
                    pending.insert(request_id, sink);
                }
                // Already torn down.
                None => return Err(Some(sink)),
            }
        }
        let frame = encode_request(request_id, request, trace);
        let wrote = {
            let mut stream = conn.stream.lock();
            stream.write_all(&frame)
        };
        match wrote {
            Ok(()) => Ok(()),
            Err(_) => {
                conn.dead.store(true, Ordering::SeqCst);
                let sink = conn
                    .pending
                    .lock()
                    .as_mut()
                    .and_then(|pending| pending.remove(&request_id));
                Err(sink)
            }
        }
    }
}

struct TcpEndpoint {
    transport: TcpTransport,
    peer: u64,
}

impl EndpointImpl for TcpEndpoint {
    fn deliver(
        &self,
        request: Request,
        sink: ReplySink,
        trace: Option<TraceContext>,
    ) -> Result<(), SendRejected> {
        // Lifecycle messages get the classic two attempts (a pooled
        // connection may be stale) but no redial budget: a shutdown fanning
        // out to peers that are already gone must not pay a deadline each.
        let budget = if matches!(request, Request::Shutdown | Request::Crash) {
            Duration::ZERO
        } else {
            REDIAL_DEADLINE
        };
        let deadline = Instant::now() + budget;
        let mut backoff = REDIAL_BACKOFF_START;
        let mut sink = sink;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // The address book is re-resolved every attempt: a peer that
            // restarted on a *new* port publishes it there, and the redial
            // loop picks it up mid-stream without re-creating endpoints.
            let Some(addr) = self.transport.addr_of(PeerId(self.peer)) else {
                return Err(SendRejected {
                    error: TransportError::UnknownPeer(self.peer),
                    request,
                    sink,
                });
            };
            // Redials must not dial past the deadline they serve.
            let connect_timeout = if attempt == 1 {
                CONNECT_TIMEOUT
            } else {
                CONNECT_TIMEOUT
                    .min(deadline.saturating_duration_since(Instant::now()))
                    .max(Duration::from_millis(25))
            };
            let failure = match self.transport.connection_to(addr, connect_timeout) {
                Ok(conn) => match TcpTransport::try_send(&conn, &request, sink, trace) {
                    Ok(()) => return Ok(()),
                    Err(Some(recovered)) => {
                        // Evict the dead connection so the retry dials fresh.
                        let mut pool = self.transport.inner.pool.lock();
                        if let Some(current) = pool.get(&addr) {
                            if Arc::ptr_eq(current, &conn) {
                                pool.remove(&addr);
                            }
                        }
                        drop(pool);
                        sink = recovered;
                        TransportError::Closed
                    }
                    // The reader drained the pending table concurrently: the
                    // sink already signalled its caller, nothing to retry
                    // with.
                    Err(None) => return Ok(()),
                },
                Err(error) => error,
            };
            // The second attempt (fresh dial after evicting a stale pooled
            // connection) is always free; from there on, redial with capped
            // backoff until the deadline.
            if attempt >= 2 {
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendRejected {
                        error: failure,
                        request,
                        sink,
                    });
                }
                std::thread::sleep(backoff.min(deadline.saturating_duration_since(now)));
                backoff = (backoff * 2).min(REDIAL_BACKOFF_CAP);
            }
        }
    }
}

/// Serves one accepted connection: decode request frames, queue them on the
/// peer's mailbox, frame replies back. Returns when the connection closes,
/// sends garbage, or the peer stops receiving.
fn serve_connection(stream: TcpStream, queue: Sender<Incoming>) {
    let peer_desc = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".to_string());
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer: Arc<dyn ReplyWriter> = Arc::new(ServerConnWriter {
        stream: Mutex::new(write_half),
    });
    let mut reader = stream;
    loop {
        match read_frame(&mut reader) {
            Ok(Some(payload)) => match decode_payload(&payload) {
                Ok(Envelope::Request {
                    request_id,
                    request,
                    trace,
                }) => {
                    let incoming = Incoming::new(
                        request,
                        ReplySink::remote(Arc::clone(&writer), request_id),
                        trace,
                    );
                    if queue.send(incoming).is_err() {
                        // The peer stopped receiving (crash/shutdown).
                        break;
                    }
                }
                // A reply frame on the accept side is protocol misuse.
                Ok(Envelope::Reply { .. }) => break,
                Err(error) => {
                    // Garbage in, typed error out, connection dropped —
                    // the peer stays live for everyone else.
                    rdht_metrics::log::global().warn(
                        "net.tcp",
                        "dropping accepted connection on a bad frame",
                        &[
                            ("peer", &peer_desc),
                            ("error", error.variant()),
                            ("detail", &error.to_string()),
                        ],
                    );
                    break;
                }
            },
            Ok(None) => break, // clean EOF
            Err(error) => {
                if let FrameError::Wire(wire) = error {
                    rdht_metrics::log::global().warn(
                        "net.tcp",
                        "dropping accepted connection on a bad length prefix",
                        &[
                            ("peer", &peer_desc),
                            ("error", wire.variant()),
                            ("detail", &wire.to_string()),
                        ],
                    );
                }
                break;
            }
        }
    }
    let _ = reader.shutdown(Shutdown::Both);
}

impl Transport for TcpTransport {
    fn bind(&self, peer: PeerId) -> Result<Mailbox, TransportError> {
        // Re-binding an id (a restart) first tears the old accept side
        // down, so at most one listener serves a peer id at any time.
        self.unbind(peer);
        let preferred = self.addr_of(peer);
        let listener = match preferred {
            Some(addr) => TcpListener::bind(addr).or_else(|_| {
                // The old port may linger in TIME_WAIT after a restart;
                // take a fresh one — endpoints resolve the book per send,
                // so the new address is picked up transparently.
                TcpListener::bind((Ipv4Addr::LOCALHOST, 0))
            }),
            None => TcpListener::bind((Ipv4Addr::LOCALHOST, 0)),
        }
        .map_err(|error| TransportError::Io(format!("bind peer {:016x}: {error}", peer.0)))?;
        let addr = listener
            .local_addr()
            .map_err(|error| TransportError::Io(format!("local addr: {error}")))?;
        self.set_addr(peer, addr);

        let (tx, rx) = unbounded();
        let closing = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        self.inner.listeners.lock().insert(
            peer.0,
            ListenerState {
                addr,
                closing: Arc::clone(&closing),
                conns: Arc::clone(&conns),
            },
        );

        let acceptor_closing = closing;
        let acceptor_conns = conns;
        std::thread::spawn(move || {
            for accepted in listener.incoming() {
                if acceptor_closing.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = accepted else { continue };
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    let mut conns = acceptor_conns.lock();
                    // Keep the teardown list from growing with closed
                    // connections on long-lived peers.
                    conns.retain(|c| c.take_error().is_ok());
                    conns.push(clone);
                }
                let queue = tx.clone();
                std::thread::spawn(move || serve_connection(stream, queue));
            }
        });
        Ok(Mailbox::new(rx))
    }

    fn endpoint(&self, peer: PeerId) -> Result<PeerEndpoint, TransportError> {
        if self.addr_of(peer).is_none() {
            return Err(TransportError::UnknownPeer(peer.0));
        }
        Ok(PeerEndpoint::new(Arc::new(TcpEndpoint {
            transport: self.clone(),
            peer: peer.0,
        })))
    }

    fn unbind(&self, peer: PeerId) {
        let Some(state) = self.inner.listeners.lock().remove(&peer.0) else {
            return;
        };
        state.closing.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway dial; it observes the flag
        // and exits.
        let _ = TcpStream::connect_timeout(&state.addr, Duration::from_millis(200));
        // Shut every accepted connection down so reader threads unblock and
        // requesters observe closure instead of silence.
        for conn in state.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}
