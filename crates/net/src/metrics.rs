//! Per-peer instruments of the cluster runtime.
//!
//! Every peer of a metrics-enabled cluster owns one `rdht_metrics::Registry`
//! holding its whole observable state: the request counters and service-time
//! histograms maintained by the peer loop (this module), the storage
//! engine's WAL/compaction instruments (`rdht_storage::StorageMetrics`), the
//! hand-off phase durations (`rdht_membership::TransferMetrics`), and —
//! registered as *shared handles* — the cluster-wide dedup totals and fault
//! plan counters. A scrape ([`crate::Request::Metrics`], answered with the
//! Prometheus text exposition) or [`crate::Cluster::registry`] reads them
//! all from one place.
//!
//! Instruments are registered **eagerly** at peer start, so a series that
//! has seen no event yet (a peer that never drove a hand-off, a cluster
//! without faults) still appears in the exposition at zero — monitoring can
//! assert on presence, not just on values.

use rdht_membership::TransferMetrics;
use rdht_metrics::{exponential_buckets, Counter, Gauge, Histogram, Registry};

use crate::message::Request;

/// Canonical instrument names, also listed in the README's catalog.
pub mod names {
    /// Requests processed by the peer loop, labeled by `kind`.
    pub const REQUESTS: &str = "net_requests_total";
    /// Queue depth observed at the last mailbox wake (requests drained into
    /// the current batch).
    pub const QUEUE_DEPTH: &str = "net_queue_depth";
    /// Distribution of drained batch sizes — the group-commit batch depth
    /// as the *peer loop* sees it (the storage-side twin is
    /// `storage_batch_ops`).
    pub const DRAIN_BATCH: &str = "net_drain_batch_depth";
    /// Service time of one transport message (routing, dedup, apply), in
    /// nanoseconds, excluding the covering batch fsync.
    pub const SERVICE_NS: &str = "net_request_service_ns";
    /// Identified mutations applied exactly once (cluster-wide; every
    /// peer's exposition mirrors the same shared counter).
    pub const DEDUP_APPLIED: &str = "net_dedup_applied_total";
    /// Retried or duplicated mutations answered from the dedup cache
    /// (cluster-wide, shared like [`DEDUP_APPLIED`]).
    pub const DEDUP_SUPPRESSED: &str = "net_dedup_suppressed_total";
    /// Nanoseconds the peer loop stalled waiting for hand-off install acks
    /// — the hand-off stall time of ROADMAP item 5.
    pub const HANDOFF_STALL_NS: &str = "net_handoff_stall_ns_total";
    /// Indirect counter initializations served by this peer (a timestamp
    /// request that had to be answered from a gathered observation instead
    /// of a valid live counter — the Section 4.2.2 recovery path).
    pub const INDIRECT_INITS: &str = "net_indirect_initializations_total";
    /// Messages a client handle exchanged (requests and replies counted
    /// separately). Client-side; see [`crate::ClusterClient::attach_metrics`].
    pub const CLIENT_MESSAGES: &str = "net_client_messages_total";
    /// Retry attempts a client made beyond each call's first attempt.
    pub const CLIENT_RETRIES: &str = "net_client_retries_total";
    /// Calls that spent their whole retry budget without a usable reply.
    pub const CLIENT_RETRY_EXHAUSTIONS: &str = "net_client_retry_exhaustions_total";
    /// Indirect initializations this client ran (gathered the replicas'
    /// maximum timestamp after a `NeedsInitialization`).
    pub const CLIENT_INDIRECT_INITS: &str = "net_client_indirect_initializations_total";
    /// Frames the fault plan passed through to the real transport.
    pub const FAULT_DELIVERED: &str = "net_fault_frames_delivered_total";
    /// Frames the fault plan silently dropped (including partitions).
    pub const FAULT_DROPPED: &str = "net_fault_frames_dropped_total";
    /// Frames the fault plan held back before delivery.
    pub const FAULT_DELAYED: &str = "net_fault_frames_delayed_total";
    /// Frames the fault plan delivered a second time.
    pub const FAULT_DUPLICATED: &str = "net_fault_frames_duplicated_total";
}

/// Per-kind request counters, registered eagerly so every kind appears in
/// the exposition from the first scrape.
#[derive(Clone, Debug)]
pub struct RequestCounters {
    put: Counter,
    puts: Counter,
    get: Counter,
    timestamp: Counter,
    handoff: Counter,
    install: Counter,
    metrics: Counter,
    lifecycle: Counter,
}

impl RequestCounters {
    fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        let kind = |kind: &str| -> Counter {
            let mut with_kind: Vec<(&str, &str)> = labels.to_vec();
            with_kind.push(("kind", kind));
            registry.counter(
                names::REQUESTS,
                "requests processed by the peer loop, by kind",
                &with_kind,
            )
        };
        RequestCounters {
            put: kind("put"),
            puts: kind("puts"),
            get: kind("get"),
            timestamp: kind("timestamp"),
            handoff: kind("handoff"),
            install: kind("install"),
            metrics: kind("metrics"),
            lifecycle: kind("lifecycle"),
        }
    }

    /// The counter of `request`'s kind.
    pub fn of(&self, request: &Request) -> &Counter {
        match request {
            Request::PutReplica { .. } => &self.put,
            Request::PutReplicas { .. } => &self.puts,
            Request::GetReplica { .. } => &self.get,
            Request::Timestamp { .. } => &self.timestamp,
            Request::HandoffRange { .. } => &self.handoff,
            Request::InstallState { .. } => &self.install,
            Request::Metrics | Request::SlowRequests { .. } => &self.metrics,
            Request::Shutdown | Request::Crash => &self.lifecycle,
        }
    }
}

/// The instrument bundle one peer thread carries: everything it observes
/// into, plus the [`Registry`] it answers scrapes from.
#[derive(Clone, Debug)]
pub struct PeerMetrics {
    registry: Registry,
    /// Requests processed, by kind.
    pub requests: RequestCounters,
    /// Queue depth at the last mailbox wake.
    pub queue_depth: Gauge,
    /// Drained batch sizes.
    pub drain_batch: Histogram,
    /// Per-message service time, nanoseconds.
    pub service_ns: Histogram,
    /// Nanoseconds stalled waiting for install acks.
    pub handoff_stall_ns: Counter,
    /// Indirect initializations served by this peer.
    pub indirect_initializations: Counter,
    /// Hand-off phase durations (driven by the peer loop).
    pub transfer: TransferMetrics,
}

impl PeerMetrics {
    /// Registers the peer-loop instruments (and the hand-off phase
    /// histograms) into `registry` under `labels`, eagerly.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        PeerMetrics {
            requests: RequestCounters::register(registry, labels),
            queue_depth: registry.gauge(
                names::QUEUE_DEPTH,
                "requests drained at the last mailbox wake",
                labels,
            ),
            drain_batch: registry.histogram_with_buckets(
                names::DRAIN_BATCH,
                "drained group-commit batch sizes",
                labels,
                exponential_buckets(1, 2, 11),
            ),
            service_ns: registry.histogram(
                names::SERVICE_NS,
                "per-message service time (routing, dedup, apply), nanoseconds",
                labels,
            ),
            handoff_stall_ns: registry.counter(
                names::HANDOFF_STALL_NS,
                "nanoseconds stalled waiting for hand-off install acks",
                labels,
            ),
            indirect_initializations: registry.counter(
                names::INDIRECT_INITS,
                "indirect counter initializations served (Section 4.2.2 path)",
                labels,
            ),
            transfer: TransferMetrics::register(registry, labels),
            registry: registry.clone(),
        }
    }

    /// The registry the instruments live in — what a
    /// [`crate::Request::Metrics`] scrape encodes.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}
