//! The cluster: peer threads, the shared membership directory and lifecycle
//! management — including real crash/restart recovery when peers are backed
//! by `rdht-storage` directories.
//!
//! Since the transport redesign the peer loop, the forwarding rules and the
//! hand-off protocol are **transport-generic**: peers receive [`Incoming`]
//! work items from a [`Mailbox`] and answer through [`ReplySink`]s, and
//! everyone addresses everyone else through [`PeerEndpoint`] handles. The
//! backend is selected by [`ClusterConfig::with_transport`] — the in-process
//! [`ChannelTransport`] (deterministic, fast, the default) or the
//! length-framed [`TcpTransport`] over loopback sockets. Multi-process
//! deployments run one [`serve_tcp_peer`] per process and connect with
//! [`crate::ClusterClient::connect_tcp`].

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdht_core::durability::DurableState;
use rdht_core::kts::{IndirectObservation, KtsNode};
use rdht_core::{LastTsInitPolicy, ReplicaValue, Timestamp};
use rdht_hashing::{HashFamily, HashId, Key};
use rdht_membership::{
    commit_handoff, export_handoff, install_handoff, plan_join, plan_leave, MembershipError,
};
use rdht_metrics::{encode, Counter, Registry, RequestTree, SpanLog, TraceContext, TraceSink};
use rdht_overlay::in_open_closed_interval;
use rdht_storage::{StorageEngine, StorageMetrics, StorageOptions};

use crate::client::{allocate_actor_id, ClusterClient};
use crate::fault::{set_thread_source, FaultPlan, FaultyTransport};
use crate::message::{HandoffFault, HandoffKind, OpId, Reply, Request};
use crate::metrics::{names, PeerMetrics};
use crate::tcp::TcpTransport;
use crate::transport::{
    CallError, ChannelTransport, Incoming, Mailbox, PeerEndpoint, ReplySink, Transport,
    TransportError,
};

/// How long the peer driving a hand-off waits for the target to journal the
/// shipped bundle before **re-sending** it. A lost install ack is the
/// textbook lossy-network hang: the target journaled the bundle but the ack
/// vanished, so the source re-ships under the same [`OpId`] and the target
/// re-acknowledges from its dedup cache without re-applying.
const INSTALL_ACK_TIMEOUT: Duration = Duration::from_secs(2);

/// How many times a hand-off source re-ships a bundle whose install ack
/// never arrived before aborting the transfer.
const INSTALL_ATTEMPTS: u32 = 5;

/// Per-attempt deadline of the coordinator's hand-off wait. Long enough to
/// cover the source's full install retry budget
/// (`INSTALL_ATTEMPTS * INSTALL_ACK_TIMEOUT`), so a coordinator re-send can
/// only mean the request or the reply was lost — never that the source is
/// still working.
const COORDINATION_ATTEMPT_TIMEOUT: Duration = Duration::from_secs(15);

/// How many bounded waits a join/leave coordinator makes before giving up
/// with [`MembershipError::CoordinationTimeout`]. Re-sends repeat the same
/// [`OpId`], so a source that already committed re-acknowledges from its
/// dedup cache instead of driving a second transfer.
const COORDINATION_ATTEMPTS: u32 = 4;

/// Default bounded-idle grace period after which a gracefully departed
/// peer's forwarder thread is reaped ([`ClusterConfig::forwarder_reap_idle`]).
/// Requests routed under the pre-departure directory view arrive within
/// transport latency, so anything still idle after this has nothing left to
/// forward; the directory serves the range from the successor either way.
pub(crate) const DEFAULT_FORWARDER_REAP_IDLE: Duration = Duration::from_secs(30);

/// Identifier of a peer on the cluster ring (the same 64-bit space keys are
/// hashed into).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u64);

/// Where (and how) a cluster persists its peers' state.
#[derive(Clone, Debug)]
pub struct ClusterStorage {
    /// Root directory; each peer owns the subdirectory
    /// `peer-<id:016x>` underneath it.
    pub root: PathBuf,
    /// Engine tuning (fsync policy, snapshot cadence) shared by every peer.
    pub options: StorageOptions,
}

impl ClusterStorage {
    /// Storage under `root` with default engine options (fsync `Always`).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ClusterStorage {
            root: root.into(),
            options: StorageOptions::default(),
        }
    }

    /// Storage under `root` with explicit engine options.
    pub fn with_options(root: impl Into<PathBuf>, options: StorageOptions) -> Self {
        ClusterStorage {
            root: root.into(),
            options,
        }
    }

    /// The on-disk directory of one peer.
    pub fn peer_dir(&self, peer: PeerId) -> PathBuf {
        self.root.join(format!("peer-{:016x}", peer.0))
    }
}

/// Which transport backend a cluster runs over
/// ([`ClusterConfig::with_transport`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// The in-process mailbox mesh ([`ChannelTransport`]): no
    /// serialization, no sockets — deterministic and fast. The default.
    #[default]
    Channel,
    /// Length-framed TCP over loopback sockets ([`TcpTransport`]): every
    /// request crosses the wire codec and a real socket, so latency and
    /// framing costs are measured, not modelled.
    Tcp,
}

/// Tunables of a cluster deployment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of peer threads.
    pub num_peers: usize,
    /// Number of replication hash functions `|Hr|`.
    pub num_replicas: usize,
    /// Seed for peer identifiers and the hash family.
    pub seed: u64,
    /// Artificial delay injected before a peer processes each *data* message,
    /// modelling network latency. Zero by default so tests run fast.
    /// Lifecycle messages (`Shutdown`, `Crash`) are exempt: tearing a
    /// cluster down is a local operation, not a network exchange, so
    /// `Cluster::shutdown` stays prompt regardless of the modelled latency.
    pub message_delay: Duration,
    /// When set, every peer journals its replicas and counters to its own
    /// directory under `storage.root`, and [`Cluster::restart_peer`] can
    /// bring a crashed peer back with its durable state. With
    /// `FsyncPolicy::GroupCommit` in the storage options, every peer runs
    /// its request loop in drain-apply-sync-reply mode: all queued client
    /// requests (bounded by `max_batch`) are drained, applied and
    /// journaled, made durable by **one** covering fsync, and only then
    /// acknowledged — N concurrent writers share one fsync instead of
    /// paying N.
    pub storage: Option<ClusterStorage>,
    /// How long a gracefully departed peer lingers as a forwarder after its
    /// last message before its thread (and transport binding) is reaped.
    /// Requests reaching the peer after the reap are re-routed through the
    /// shared directory by whoever holds a stale forwarding rule, so the
    /// range keeps serving; the reap just returns the thread early on
    /// long-lived clusters.
    pub forwarder_reap_idle: Duration,
    /// The transport backend peers and clients communicate over.
    pub transport: TransportKind,
    /// When set, the transport is wrapped in a [`FaultyTransport`] applying
    /// this plan to every frame — drops, duplicates, latency and partitions
    /// per directed link. The cluster is expected to *survive* it: client
    /// retries, peer-side dedup and bounded coordinator waits turn a hostile
    /// network into latency, not lost updates.
    pub faults: Option<FaultPlan>,
    /// When true (the default), every peer carries a metrics registry
    /// ([`crate::PeerMetrics`]) and answers [`Request::Metrics`] scrapes
    /// with its Prometheus text exposition. Disable to measure the
    /// instrumentation's own overhead.
    pub metrics: bool,
    /// When set, every peer records distributed-tracing spans (queue wait,
    /// apply, covering fsync, reply send, hand-off phases) for requests
    /// that arrive with a sampled [`TraceContext`] into this shared sink.
    /// Sampling is decided by the *client*
    /// ([`crate::ClusterClient::attach_trace`]); with no sampled traffic
    /// the sink stays empty and the peer loop pays nothing.
    pub trace: Option<TraceSink>,
}

impl ClusterConfig {
    /// A configuration with `num_peers` peers, `num_replicas` replication
    /// functions, no artificial delay, no durability, and the in-process
    /// channel transport.
    pub fn new(num_peers: usize, num_replicas: usize, seed: u64) -> Self {
        ClusterConfig {
            num_peers,
            num_replicas,
            seed,
            message_delay: Duration::ZERO,
            storage: None,
            forwarder_reap_idle: DEFAULT_FORWARDER_REAP_IDLE,
            transport: TransportKind::Channel,
            faults: None,
            metrics: true,
            trace: None,
        }
    }

    /// Returns a copy with peer-state durability under `storage`.
    pub fn with_storage(mut self, storage: ClusterStorage) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Returns a copy with the given forwarder reap grace period.
    pub fn with_forwarder_reap_idle(mut self, idle: Duration) -> Self {
        self.forwarder_reap_idle = idle;
        self
    }

    /// Returns a copy running over the given transport backend.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Returns a copy whose transport is decorated with the given fault
    /// plan. Works over either backend.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Returns a copy with per-peer metrics registries switched on or off.
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// Returns a copy whose peers record spans for sampled requests into
    /// `sink`.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }
}

/// Shared totals of the peers' idempotency windows
/// ([`Cluster::dedup_stats`]), kept as registry-grade [`Counter`] handles:
/// the same atomics the stats snapshot reads are registered into every
/// peer's metrics registry, so the two surfaces can never disagree.
#[derive(Default)]
pub(crate) struct DedupCounters {
    pub(crate) applied: Counter,
    pub(crate) suppressed: Counter,
}

impl DedupCounters {
    /// Registers the shared counters into a peer's registry. The totals are
    /// cluster-wide — every peer's exposition mirrors the same values.
    pub(crate) fn register(&self, registry: &Registry, labels: &[(&str, &str)]) {
        registry.register_counter(
            names::DEDUP_APPLIED,
            "identified mutations applied exactly once (cluster-wide)",
            labels,
            self.applied.clone(),
        );
        registry.register_counter(
            names::DEDUP_SUPPRESSED,
            "retried or duplicated mutations answered from the dedup cache (cluster-wide)",
            labels,
            self.suppressed.clone(),
        );
    }
}

/// Totals of the peers' request-dedup windows: how many identified
/// mutations were applied for the first time, and how many arrived again (a
/// client retry or a duplicated frame) and were answered from the cached
/// reply instead of being re-applied. `duplicates_suppressed > 0` under a
/// fault plan is the proof that the network misbehaved *and* that no
/// mutation ran twice because of it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Identified mutations applied exactly once.
    pub mutations_applied: u64,
    /// Retried or duplicated mutations answered from the cache.
    pub duplicates_suppressed: u64,
}

/// Shared, read-mostly view of cluster membership: which peers exist, which
/// are alive, and how to reach them — plus the transport everything travels
/// over.
pub(crate) struct Directory {
    pub(crate) family: HashFamily,
    /// The transport the cluster runs over; peers resolve hand-off targets
    /// through it (a joiner is bound before it is a directory member).
    pub(crate) transport: Arc<dyn Transport>,
    /// Peer ring: id -> (endpoint, alive flag).
    pub(crate) peers: RwLock<BTreeMap<PeerId, (PeerEndpoint, bool)>>,
    pub(crate) message_delay: Duration,
    pub(crate) forwarder_reap_idle: Duration,
    /// Cluster-wide dedup totals, fed by every peer's idempotency window.
    pub(crate) dedup: DedupCounters,
}

impl Directory {
    /// The peer currently responsible for a position: the first *alive* peer
    /// clockwise from it (successor-on-the-ring responsibility).
    pub(crate) fn responsible_for(&self, position: u64) -> Option<(PeerId, PeerEndpoint)> {
        let peers = self.peers.read();
        peers
            .range(PeerId(position)..)
            .chain(peers.iter())
            .find(|(_, (_, alive))| *alive)
            .map(|(id, (endpoint, _))| (*id, endpoint.clone()))
    }

    /// Marks a peer as dead (its endpoint stays but is never selected
    /// again).
    pub(crate) fn mark_dead(&self, peer: PeerId) {
        if let Some(entry) = self.peers.write().get_mut(&peer) {
            entry.1 = false;
        }
    }

    /// Re-registers a (re)started peer under a fresh endpoint and marks it
    /// alive again.
    pub(crate) fn revive(&self, peer: PeerId, endpoint: PeerEndpoint) {
        self.peers.write().insert(peer, (endpoint, true));
    }

    /// Number of live peers.
    pub(crate) fn live_count(&self) -> usize {
        self.peers
            .read()
            .values()
            .filter(|(_, alive)| *alive)
            .count()
    }

    /// Sorted ring positions of the live peers — the input the membership
    /// planner works on.
    pub(crate) fn alive_ids_sorted(&self) -> Vec<u64> {
        self.peers
            .read()
            .iter()
            .filter(|(_, (_, alive))| *alive)
            .map(|(id, _)| id.0)
            .collect()
    }
}

/// What [`Cluster::restart_peer`] recovered from a peer's storage directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Replicas rebuilt from the snapshot + WAL and served again.
    pub recovered_replicas: usize,
    /// Durable counter images found on disk. Per the paper's Rule 1 these
    /// are **not** resurrected into the live Valid Counter Set (another peer
    /// may have generated newer timestamps while this one was down); they
    /// are seeded as *recovery floors* instead, so the indirect
    /// re-initialization of Section 4.2.2 takes `max(observed, recovered)`
    /// and the counter cannot regress even when every replica holder of a
    /// key crashed at once.
    pub recovered_counters: usize,
    /// Storage generation (snapshot/WAL pair) the state was recovered from.
    pub generation: u64,
    /// Whether recovery had to discard a torn WAL tail.
    pub torn_tail: bool,
}

/// What [`Cluster::join_peer`] moved to the freshly joined peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinReport {
    /// The peer that joined.
    pub peer: PeerId,
    /// The successor whose range was split (equals `peer` when the joiner
    /// bootstrapped an empty ring).
    pub source: PeerId,
    /// Exclusive start of the interval the joiner took over.
    pub range_start: u64,
    /// Inclusive end of the interval the joiner took over.
    pub range_end: u64,
    /// Replicas shipped from the source.
    pub replicas_moved: usize,
    /// Counters handed over directly (Section 4.2.1).
    pub counters_moved: usize,
}

/// What [`Cluster::leave_peer`] moved to the departing peer's successor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaveReport {
    /// The peer that left gracefully.
    pub peer: PeerId,
    /// The successor that absorbed its range.
    pub target: PeerId,
    /// Exclusive start of the interval that moved.
    pub range_start: u64,
    /// Inclusive end of the interval that moved.
    pub range_end: u64,
    /// Replicas shipped to the successor.
    pub replicas_moved: usize,
    /// Counters handed over directly — the direct algorithm of Section
    /// 4.2.1, which is what makes the graceful path free of indirect
    /// re-initializations.
    pub counters_moved: usize,
}

/// A running cluster of peer threads.
pub struct Cluster {
    directory: Arc<Directory>,
    handles: BTreeMap<PeerId, JoinHandle<()>>,
    config: ClusterConfig,
    /// Dedup namespace of this coordinator's hand-off requests: every
    /// join/leave gets a fresh `seq`, every re-send repeats it.
    coordinator_client: u64,
    next_coordination_seq: u64,
    /// Each live peer's metrics registry (shared handles into the peer
    /// thread's instruments). Empty when `config.metrics` is off.
    registries: BTreeMap<PeerId, Registry>,
}

impl Cluster {
    /// Spawns a cluster with `num_peers` peers and `num_replicas` replication
    /// hash functions, with no artificial message delay, no durability, and
    /// the in-process channel transport.
    pub fn spawn(num_peers: usize, num_replicas: usize, seed: u64) -> Self {
        Cluster::spawn_with(ClusterConfig::new(num_peers, num_replicas, seed))
    }

    /// Spawns a cluster from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `num_peers` is zero, when durability is configured and a
    /// peer's storage directory cannot be opened, or when the transport
    /// cannot bind a peer.
    pub fn spawn_with(config: ClusterConfig) -> Self {
        assert!(config.num_peers > 0, "a cluster needs at least one peer");
        let base: Arc<dyn Transport> = match config.transport {
            TransportKind::Channel => Arc::new(ChannelTransport::new()),
            TransportKind::Tcp => Arc::new(TcpTransport::new()),
        };
        let transport: Arc<dyn Transport> = match &config.faults {
            Some(plan) => Arc::new(FaultyTransport::new(base, plan.clone())),
            None => base,
        };
        let family = HashFamily::new(config.num_replicas, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc1u64);
        let mut ring: BTreeMap<PeerId, (PeerEndpoint, bool)> = BTreeMap::new();
        let mut bound: Vec<(PeerId, Mailbox)> = Vec::new();
        while ring.len() < config.num_peers {
            let id = PeerId(rng.gen());
            if ring.contains_key(&id) {
                continue;
            }
            let mailbox = transport
                .bind(id)
                .unwrap_or_else(|error| panic!("cannot bind peer {:016x}: {error}", id.0));
            let endpoint = transport
                .endpoint(id)
                .expect("a just-bound peer resolves to an endpoint");
            ring.insert(id, (endpoint, true));
            bound.push((id, mailbox));
        }
        let directory = Arc::new(Directory {
            family,
            transport,
            peers: RwLock::new(ring),
            message_delay: config.message_delay,
            forwarder_reap_idle: config.forwarder_reap_idle,
            dedup: DedupCounters::default(),
        });
        let mut registries = BTreeMap::new();
        let handles = bound
            .into_iter()
            .map(|(id, mailbox)| {
                let mut engine = open_engine(&config.storage, id);
                let kts = kts_from_recovery(&mut engine);
                let metrics = config.metrics.then(|| {
                    let (registry, metrics) =
                        build_peer_metrics(id, &directory, config.faults.as_ref(), &mut engine);
                    registries.insert(id, registry);
                    metrics
                });
                let handle = spawn_peer_thread(
                    id,
                    mailbox,
                    Arc::clone(&directory),
                    engine,
                    kts,
                    metrics,
                    config.trace.clone(),
                );
                (id, handle)
            })
            .collect();
        Cluster {
            directory,
            handles,
            config,
            coordinator_client: allocate_actor_id(),
            next_coordination_seq: 0,
            registries,
        }
    }

    /// The configuration the cluster was spawned with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Totals of the peers' idempotency windows: mutations applied exactly
    /// once vs. retried/duplicated arrivals answered from the cache.
    pub fn dedup_stats(&self) -> DedupStats {
        DedupStats {
            mutations_applied: self.directory.dedup.applied.get(),
            duplicates_suppressed: self.directory.dedup.suppressed.get(),
        }
    }

    /// The metrics registry shared with `peer`'s thread, or `None` when
    /// metrics are disabled or the id is unknown. The returned handle reads
    /// the live instruments — encode it any time for a fresh snapshot.
    pub fn registry(&self, peer: PeerId) -> Option<Registry> {
        self.registries.get(&peer).cloned()
    }

    /// Renders `peer`'s registry as Prometheus text exposition without a
    /// message exchange — the in-process twin of a [`Request::Metrics`]
    /// scrape. `None` when metrics are disabled or the id is unknown.
    pub fn scrape(&self, peer: PeerId) -> Option<String> {
        self.registries.get(&peer).map(encode)
    }

    fn next_coordination_op(&mut self) -> OpId {
        let seq = self.next_coordination_seq;
        self.next_coordination_seq += 1;
        OpId {
            client: self.coordinator_client,
            seq,
        }
    }

    /// Creates a client handle. Clients are cheap; create one per thread that
    /// wants to issue operations.
    pub fn client(&self) -> ClusterClient {
        ClusterClient::new(Arc::clone(&self.directory))
    }

    /// All peer identifiers, in ring order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.directory.peers.read().keys().copied().collect()
    }

    /// Number of live peers.
    pub fn live_peers(&self) -> usize {
        self.directory.live_count()
    }

    /// Whether `peer`'s thread has exited — crashed, shut down, or reaped as
    /// an idle forwarder after a graceful leave. `true` for unknown ids and
    /// for peers whose handle was already joined.
    pub fn peer_thread_finished(&self, peer: PeerId) -> bool {
        self.handles
            .get(&peer)
            .map(|handle| handle.is_finished())
            .unwrap_or(true)
    }

    /// The transport endpoint of a peer. Requests sent through it bypass
    /// the directory — tests use this to model messages routed under a
    /// stale membership view (in flight across a hand-off commit); normal
    /// clients go through [`Cluster::client`]. `None` for unknown ids.
    pub fn peer_endpoint(&self, peer: PeerId) -> Option<PeerEndpoint> {
        self.directory
            .peers
            .read()
            .get(&peer)
            .map(|(endpoint, _)| endpoint.clone())
    }

    /// Whether `peer` is currently alive (`false` for dead or unknown ids).
    pub fn peer_is_alive(&self, peer: PeerId) -> bool {
        self.directory
            .peers
            .read()
            .get(&peer)
            .map(|(_, alive)| *alive)
            .unwrap_or(false)
    }

    /// The peer currently responsible for timestamping `key` — useful for
    /// tests that want to crash exactly that peer.
    pub fn timestamp_responsible(&self, key: &Key) -> Option<PeerId> {
        let position = self.directory.family.eval_timestamp(key);
        self.directory.responsible_for(position).map(|(id, _)| id)
    }

    /// The peer currently responsible for `key` under replication function
    /// `hash`.
    pub fn replica_responsible(&self, hash: HashId, key: &Key) -> Option<PeerId> {
        let position = self.directory.family.eval(hash, key);
        self.directory.responsible_for(position).map(|(id, _)| id)
    }

    /// Crashes a peer: it is marked dead in the directory (so it stops being
    /// responsible for anything) and its thread stops without any final
    /// flush — a fail-stop failure. Everything in the peer's memory (its
    /// live counters, and its replicas when the cluster has no storage) is
    /// lost; what its journal already holds survives on disk and
    /// [`Cluster::restart_peer`] can recover it.
    ///
    /// Errors with [`MembershipError::UnknownPeer`] for an id that was never
    /// a member and [`MembershipError::AlreadyDead`] for one that is already
    /// down — a crash that silently "succeeds" against the wrong id is how
    /// failover tests end up testing nothing.
    pub fn crash_peer(&self, peer: PeerId) -> Result<(), MembershipError> {
        let endpoint = {
            let peers = self.directory.peers.read();
            match peers.get(&peer) {
                None => return Err(MembershipError::UnknownPeer(peer.0)),
                Some((_, false)) => return Err(MembershipError::AlreadyDead(peer.0)),
                Some((endpoint, true)) => endpoint.clone(),
            }
        };
        self.directory.mark_dead(peer);
        let _ = endpoint.send_no_reply(Request::Crash);
        Ok(())
    }

    /// Restarts a crashed peer from its on-disk directory: joins the dead
    /// thread, recovers the storage generation (snapshot + WAL, tolerating a
    /// torn tail), re-registers the peer alive in the directory and respawns
    /// its thread over the recovered replicas. An alive peer is crashed
    /// first (a hard restart).
    ///
    /// The live Valid Counter Set starts **empty** (Rule 1) — the durable
    /// counter images are cleared from the journal and seeded as *recovery
    /// floors*: the first timestamp request per key still takes the indirect
    /// path of Section 4.2.2, but initializes at `max(observed, recovered)`
    /// so currency cannot regress when the observation misses replicas.
    ///
    /// On a cluster without storage the peer simply rejoins empty. Errors
    /// with [`MembershipError::UnknownPeer`] for an id that was never a
    /// member.
    pub fn restart_peer(&mut self, peer: PeerId) -> Result<RestartReport, MembershipError> {
        if !self.directory.peers.read().contains_key(&peer) {
            return Err(MembershipError::UnknownPeer(peer.0));
        }
        // Make sure the old thread is gone before touching its directory:
        // two threads must never share a WAL. The thread can still be
        // running even when the peer is marked dead — a gracefully departed
        // peer lingers as a forwarder — so send the stop signal directly
        // instead of going through crash_peer's liveness check (which would
        // skip it and leave handle.join() waiting forever). Joining the
        // handle also guarantees the old transport binding was torn down
        // (the thread unbinds on exit) before the id is bound again.
        let endpoint = self
            .directory
            .peers
            .read()
            .get(&peer)
            .map(|(endpoint, _)| endpoint.clone());
        self.directory.mark_dead(peer);
        if let Some(endpoint) = endpoint {
            let _ = endpoint.send_no_reply(Request::Crash);
        }
        if let Some(handle) = self.handles.remove(&peer) {
            let _ = handle.join();
        }

        let mut engine = open_engine(&self.config.storage, peer);
        let report = RestartReport {
            recovered_replicas: engine.replicas().len(),
            recovered_counters: engine.counters().len(),
            generation: engine.generation(),
            torn_tail: engine.stats().recovered_torn_tail,
        };
        let kts = kts_from_recovery(&mut engine);
        let metrics = self.config.metrics.then(|| {
            let (registry, metrics) = build_peer_metrics(
                peer,
                &self.directory,
                self.config.faults.as_ref(),
                &mut engine,
            );
            self.registries.insert(peer, registry);
            metrics
        });

        let mailbox = self
            .directory
            .transport
            .bind(peer)
            .unwrap_or_else(|error| panic!("cannot rebind peer {:016x}: {error}", peer.0));
        let endpoint = self
            .directory
            .transport
            .endpoint(peer)
            .expect("a just-bound peer resolves to an endpoint");
        let handle = spawn_peer_thread(
            peer,
            mailbox,
            Arc::clone(&self.directory),
            engine,
            kts,
            metrics,
            self.config.trace.clone(),
        );
        self.directory.revive(peer, endpoint);
        self.handles.insert(peer, handle);
        Ok(report)
    }

    /// Adds a live peer to the running cluster.
    ///
    /// The joiner's successor splits its responsibility range
    /// (`rdht_membership::plan_join`): replicas in `(pred, new_id]` and the
    /// counters of the keys timestamped there move to the joiner through the
    /// journaled hand-off protocol, and the successor registers the joiner
    /// in the shared directory at the commit point — requests that were
    /// routed to the successor meanwhile are forwarded, so clients never
    /// observe a half-moved range. On a storage-backed cluster every phase
    /// is journaled; a crash mid-transfer is recovered by
    /// [`Cluster::restart_peer`] + a retried `join_peer`.
    pub fn join_peer(&mut self, new_id: PeerId) -> Result<JoinReport, MembershipError> {
        self.join_peer_impl(new_id, None)
    }

    /// [`Cluster::join_peer`] with fault injection: the source peer
    /// fail-stops at the chosen phase boundary. Crash-recovery tests use
    /// this to exercise the rollback/completion guarantees of the transfer
    /// journal.
    pub fn join_peer_with_fault(
        &mut self,
        new_id: PeerId,
        fault: HandoffFault,
    ) -> Result<JoinReport, MembershipError> {
        self.join_peer_impl(new_id, Some(fault))
    }

    fn join_peer_impl(
        &mut self,
        new_id: PeerId,
        fault: Option<HandoffFault>,
    ) -> Result<JoinReport, MembershipError> {
        if self.directory.peers.read().contains_key(&new_id) {
            return Err(MembershipError::AlreadyMember(new_id.0));
        }
        let alive = self.directory.alive_ids_sorted();

        // Bind and spawn the joiner first, unregistered: it must be able to
        // process the InstallState message (the hand-off source resolves it
        // through the *transport*), but no client may route to it until the
        // hand-off commits and registers it in the directory. Reopening an
        // existing storage directory (a retry after a crash mid-transfer)
        // recovers what the previous attempt already journaled.
        let mut engine = open_engine(&self.config.storage, new_id);
        let replicas_recovered = engine.replicas().len();
        let kts = kts_from_recovery(&mut engine);
        let metrics = self.config.metrics.then(|| {
            let (registry, metrics) = build_peer_metrics(
                new_id,
                &self.directory,
                self.config.faults.as_ref(),
                &mut engine,
            );
            self.registries.insert(new_id, registry);
            metrics
        });
        let mailbox = match self.directory.transport.bind(new_id) {
            Ok(mailbox) => mailbox,
            Err(error) => {
                self.registries.remove(&new_id);
                return Err(MembershipError::TransferFailed(format!(
                    "cannot bind joiner: {error}"
                )));
            }
        };
        let joiner = self
            .directory
            .transport
            .endpoint(new_id)
            .expect("a just-bound peer resolves to an endpoint");
        let handle = spawn_peer_thread(
            new_id,
            mailbox,
            Arc::clone(&self.directory),
            engine,
            kts,
            metrics,
            self.config.trace.clone(),
        );

        if alive.is_empty() {
            // Bootstrapping an empty ring: nothing to split.
            self.directory.revive(new_id, joiner);
            self.handles.insert(new_id, handle);
            return Ok(JoinReport {
                peer: new_id,
                source: new_id,
                range_start: new_id.0,
                range_end: new_id.0,
                replicas_moved: replicas_recovered,
                counters_moved: 0,
            });
        }

        let plan = match plan_join(&alive, new_id.0) {
            Ok(plan) => plan,
            Err(error) => {
                let _ = joiner.send_no_reply(Request::Crash);
                let _ = handle.join();
                self.registries.remove(&new_id);
                return Err(error);
            }
        };
        let source = PeerId(plan.source);
        let source_endpoint = self
            .directory
            .peers
            .read()
            .get(&source)
            .map(|(endpoint, _)| endpoint.clone())
            .expect("the planned source is a live directory member");

        // Bounded waits with re-sends, not an unbounded wait: a lost
        // request (or a lost completion reply) is re-sent under the same
        // OpId, and a source that already committed answers again from its
        // dedup cache instead of driving a second transfer. A teardown of
        // the reply path (the source fail-stopped) still surfaces promptly
        // as `Dropped`.
        let outcome = coordinate_handoff(
            &source_endpoint,
            Request::HandoffRange {
                op: Some(self.next_coordination_op()),
                start: plan.range_start,
                end: plan.range_end,
                target_id: new_id,
                kind: HandoffKind::Join,
                fault,
            },
        );
        match outcome {
            Ok(Reply::HandoffComplete {
                replicas_moved,
                counters_moved,
            }) => {
                // The source registered the joiner at its commit point.
                self.handles.insert(new_id, handle);
                Ok(JoinReport {
                    peer: new_id,
                    source,
                    range_start: plan.range_start,
                    range_end: plan.range_end,
                    replicas_moved,
                    counters_moved,
                })
            }
            Err(CallError::Exhausted { attempts, .. })
                if self.peer_is_alive(new_id) && fault.is_none() =>
            {
                // Every bounded wait timed out, but the directory says the
                // joiner is registered: the hand-off *committed* and only
                // the completion replies were lost. The joiner is live and
                // owns its range — tearing it down now would corrupt the
                // ring, so report success (the moved counts are unknown;
                // the state itself is where it belongs).
                let _ = attempts;
                self.handles.insert(new_id, handle);
                Ok(JoinReport {
                    peer: new_id,
                    source,
                    range_start: plan.range_start,
                    range_end: plan.range_end,
                    replicas_moved: 0,
                    counters_moved: 0,
                })
            }
            other => {
                // The hand-off never committed (the source crashed, answered
                // a failure, or stayed silent through every bounded wait):
                // tear the unregistered joiner down. Whatever the joiner
                // already journaled survives in its directory; a retried
                // join_peer for the same id recovers it and completes the
                // transfer.
                let _ = joiner.send_no_reply(Request::Crash);
                let _ = handle.join();
                self.registries.remove(&new_id);
                Err(match other {
                    Err(CallError::Exhausted { attempts, .. }) => {
                        MembershipError::CoordinationTimeout {
                            peer: source.0,
                            attempts,
                        }
                    }
                    Ok(Reply::HandoffFailed { reason }) | Err(CallError::Rejected(reason)) => {
                        MembershipError::TransferFailed(reason)
                    }
                    Ok(reply) => MembershipError::TransferFailed(format!(
                        "unexpected hand-off reply: {reply:?}"
                    )),
                    Err(_) => MembershipError::TransferFailed(
                        "the source peer crashed mid-transfer".to_string(),
                    ),
                })
            }
        }
    }

    /// Gracefully removes a live peer: the direct algorithm of Section
    /// 4.2.1.
    ///
    /// The departing peer ships every replica and counter of its range
    /// `(pred, leaving]` to its live successor, unregisters itself at the
    /// commit point and keeps running as a pure forwarder (requests routed
    /// to it before the flip are re-sent to the successor) until the cluster
    /// shuts down. Because the counters move directly, subsequent timestamp
    /// requests at the successor are served from a valid counter — **zero**
    /// indirect re-initializations, in contrast to a crash.
    pub fn leave_peer(&mut self, leaving: PeerId) -> Result<LeaveReport, MembershipError> {
        self.leave_peer_impl(leaving, None)
    }

    /// [`Cluster::leave_peer`] with fault injection, for crash-recovery
    /// tests: the departing peer fail-stops at the chosen phase boundary
    /// instead of completing its hand-off.
    pub fn leave_peer_with_fault(
        &mut self,
        leaving: PeerId,
        fault: HandoffFault,
    ) -> Result<LeaveReport, MembershipError> {
        self.leave_peer_impl(leaving, Some(fault))
    }

    fn leave_peer_impl(
        &mut self,
        leaving: PeerId,
        fault: Option<HandoffFault>,
    ) -> Result<LeaveReport, MembershipError> {
        let leaving_endpoint = {
            let peers = self.directory.peers.read();
            match peers.get(&leaving) {
                None => return Err(MembershipError::UnknownPeer(leaving.0)),
                Some((_, false)) => return Err(MembershipError::AlreadyDead(leaving.0)),
                Some((endpoint, true)) => endpoint.clone(),
            }
        };
        let alive = self.directory.alive_ids_sorted();
        let plan = plan_leave(&alive, leaving.0)?;
        let target = PeerId(plan.target);

        // Bounded waits with re-sends, same reasoning as join_peer: the
        // departing peer's dedup cache re-acknowledges a committed hand-off,
        // so a lost completion reply costs a retry, not a hang.
        let outcome = coordinate_handoff(
            &leaving_endpoint,
            Request::HandoffRange {
                op: Some(self.next_coordination_op()),
                start: plan.range_start,
                end: plan.range_end,
                target_id: target,
                kind: HandoffKind::Leave,
                fault,
            },
        );
        match outcome {
            Ok(Reply::HandoffComplete {
                replicas_moved,
                counters_moved,
            }) => Ok(LeaveReport {
                peer: leaving,
                target,
                range_start: plan.range_start,
                range_end: plan.range_end,
                replicas_moved,
                counters_moved,
            }),
            Err(CallError::Exhausted { attempts, .. })
                if fault.is_none() && !self.peer_is_alive(leaving) =>
            {
                // Silent through every wait, but the directory already shows
                // the departure: the commit happened (it flips the directory
                // before the reply) and only the completions were lost. The
                // successor owns the range; report success with unknown
                // moved counts. Gated on `fault.is_none()` because injected
                // crashes also mark the peer dead without committing.
                let _ = attempts;
                Ok(LeaveReport {
                    peer: leaving,
                    target,
                    range_start: plan.range_start,
                    range_end: plan.range_end,
                    replicas_moved: 0,
                    counters_moved: 0,
                })
            }
            Err(CallError::Exhausted { attempts, .. }) => {
                Err(MembershipError::CoordinationTimeout {
                    peer: leaving.0,
                    attempts,
                })
            }
            other => {
                let reason = match other {
                    Ok(Reply::HandoffFailed { reason }) => reason,
                    Err(CallError::Rejected(reason)) => reason,
                    Ok(reply) => format!("unexpected hand-off reply: {reply:?}"),
                    Err(_) => "the departing peer crashed mid-transfer".to_string(),
                };
                Err(MembershipError::TransferFailed(reason))
            }
        }
    }

    /// Stops every peer thread (flushing their journals) and waits for them
    /// to finish.
    pub fn shutdown(self) {
        {
            let peers = self.directory.peers.read();
            for (endpoint, _) in peers.values() {
                let _ = endpoint.send_no_reply(Request::Shutdown);
            }
        }
        for (_, handle) in self.handles {
            let _ = handle.join();
        }
    }
}

/// Configuration of one stand-alone peer of a multi-process TCP deployment
/// ([`serve_tcp_peer`]): the peer's own id, the static address book the
/// whole deployment agrees on, and the cluster parameters every process
/// must share.
#[derive(Clone, Debug)]
pub struct TcpPeerConfig {
    /// This peer's ring identifier.
    pub id: PeerId,
    /// The full static membership: every peer's id and listen address,
    /// including this peer's own.
    pub peers: Vec<(PeerId, SocketAddr)>,
    /// Number of replication hash functions `|Hr|` (must match every other
    /// process of the deployment).
    pub num_replicas: usize,
    /// Seed of the hash family (must match every other process).
    pub seed: u64,
    /// Optional durable storage for this peer.
    pub storage: Option<ClusterStorage>,
    /// When set, the peer records spans for sampled requests and renders
    /// its chrome trace to this file on clean exit. Per-process files of a
    /// deployment are merged with
    /// [`rdht_metrics::merge_chrome_trace_files`]; spans correlate by the
    /// `trace_id` entry of their `args`.
    pub trace_out: Option<PathBuf>,
}

/// Runs one peer of a multi-process TCP deployment in the calling thread:
/// binds the peer's configured listen address, serves requests (including
/// forwarding and hand-offs, exactly as in-process peers do) until a
/// `Shutdown` or `Crash` message arrives, then tears the transport down.
///
/// Every process of the deployment must be configured with the same address
/// book, `num_replicas` and `seed`; clients connect with
/// [`crate::ClusterClient::connect_tcp`]. Errors when the configured
/// address cannot be bound (it would otherwise silently listen somewhere no
/// other process knows about).
pub fn serve_tcp_peer(config: TcpPeerConfig) -> Result<(), TransportError> {
    let configured = config
        .peers
        .iter()
        .find(|(peer, _)| *peer == config.id)
        .map(|(_, addr)| *addr)
        .ok_or(TransportError::UnknownPeer(config.id.0))?;
    let tcp = TcpTransport::with_peers(config.peers.iter().copied());
    let mailbox = tcp.bind(config.id)?;
    if tcp.addr_of(config.id) != Some(configured) {
        // bind() fell back to an ephemeral port: the configured one is
        // busy. In-process that is transparent (the shared book is updated)
        // but across processes nobody would learn the new address.
        tcp.unbind(config.id);
        return Err(TransportError::Io(format!(
            "configured address {configured} is busy"
        )));
    }
    let transport: Arc<dyn Transport> = Arc::new(tcp);
    let mut ring: BTreeMap<PeerId, (PeerEndpoint, bool)> = BTreeMap::new();
    for (peer, _) in &config.peers {
        let endpoint = transport
            .endpoint(*peer)
            .expect("every address-book entry resolves to an endpoint");
        ring.insert(*peer, (endpoint, true));
    }
    let directory = Arc::new(Directory {
        family: HashFamily::new(config.num_replicas, config.seed),
        transport,
        peers: RwLock::new(ring),
        message_delay: Duration::ZERO,
        forwarder_reap_idle: DEFAULT_FORWARDER_REAP_IDLE,
        dedup: DedupCounters::default(),
    });
    let mut engine = open_engine(&config.storage, config.id);
    let kts = kts_from_recovery(&mut engine);
    // Stand-alone TCP peers always carry metrics: a remote operator's only
    // window into the process is the wire scrape.
    let (_registry, metrics) = build_peer_metrics(config.id, &directory, None, &mut engine);
    let trace = config.trace_out.as_ref().map(|_| TraceSink::new());
    set_thread_source(config.id);
    peer_main(
        config.id,
        mailbox,
        Arc::clone(&directory),
        engine,
        kts,
        Some(metrics),
        trace.clone(),
    );
    directory.transport.unbind(config.id);
    if let (Some(path), Some(sink)) = (&config.trace_out, &trace) {
        sink.write_to(path)
            .map_err(|error| TransportError::Io(format!("cannot write trace file: {error}")))?;
    }
    Ok(())
}

/// One coordinator hand-off exchange under the bounded retry discipline:
/// send, wait [`COORDINATION_ATTEMPT_TIMEOUT`], and on a pure timeout
/// re-send the *same* request (same [`OpId`]) up to
/// [`COORDINATION_ATTEMPTS`] times. Anything other than a timeout — a
/// reply, a rejection, a reply-path teardown — is definitive and returned
/// as-is; spent budgets come back as [`CallError::Exhausted`].
fn coordinate_handoff(endpoint: &PeerEndpoint, request: Request) -> Result<Reply, CallError> {
    let mut last = CallError::Timeout;
    for _ in 0..COORDINATION_ATTEMPTS {
        let outcome = match endpoint.send(request.clone()) {
            Ok(pending) => pending.wait(COORDINATION_ATTEMPT_TIMEOUT),
            Err(error) => Err(CallError::Transport(error)),
        };
        match outcome {
            Err(CallError::Timeout) => last = CallError::Timeout,
            other => return other,
        }
    }
    Err(CallError::Exhausted {
        attempts: COORDINATION_ATTEMPTS,
        last: Box::new(last),
    })
}

/// Spawns a peer thread that serves `peer_main` and tears its transport
/// binding down on exit — whichever way the loop ends (crash, shutdown,
/// forwarder reap), senders observe closure instead of silence.
fn spawn_peer_thread(
    id: PeerId,
    mailbox: Mailbox,
    directory: Arc<Directory>,
    engine: StorageEngine,
    kts: KtsNode,
    metrics: Option<PeerMetrics>,
    trace: Option<TraceSink>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Frames this thread originates (forwards, install bundles) are
        // attributed to this peer's directed links by the fault layer.
        set_thread_source(id);
        let transport = Arc::clone(&directory.transport);
        peer_main(id, mailbox, directory, engine, kts, metrics, trace);
        transport.unbind(id);
    })
}

/// Builds one peer's metrics registry: the peer-loop instruments, the
/// storage engine's WAL/compaction instruments, and — as shared handles —
/// the cluster-wide dedup totals and (when present) the fault plan
/// counters. Everything is labeled with the peer's ring id so expositions
/// from different peers can be concatenated without series collisions.
fn build_peer_metrics(
    id: PeerId,
    directory: &Directory,
    faults: Option<&FaultPlan>,
    engine: &mut StorageEngine,
) -> (Registry, PeerMetrics) {
    let registry = Registry::new();
    let peer_label = format!("{:016x}", id.0);
    let labels = [("peer", peer_label.as_str())];
    let metrics = PeerMetrics::register(&registry, &labels);
    directory.dedup.register(&registry, &labels);
    if let Some(plan) = faults {
        plan.register_metrics(&registry, &labels);
    }
    engine.attach_metrics(StorageMetrics::register(&registry, &labels));
    (registry, metrics)
}

/// Opens the storage engine backing one peer: a real journaled engine when
/// the cluster is configured with storage, an ephemeral in-memory one
/// otherwise.
fn open_engine(storage: &Option<ClusterStorage>, peer: PeerId) -> StorageEngine {
    match storage {
        Some(storage) => {
            let dir = storage.peer_dir(peer);
            StorageEngine::open(&dir, storage.options)
                .unwrap_or_else(|error| panic!("cannot open peer storage at {dir:?}: {error}"))
        }
        None => StorageEngine::ephemeral(),
    }
}

/// Reports a latched journal failure through the structured event log,
/// once per peer lifetime.
fn report_journal_poison(id: PeerId, engine: &StorageEngine, reported: &mut bool) {
    if *reported {
        return;
    }
    if let Some(error) = engine.poison_error() {
        rdht_metrics::log::global().error(
            "net.cluster",
            "journal failed; continuing WITHOUT durability — state written \
             from here on will not survive a crash",
            &[
                ("peer", &format!("{:016x}", id.0)),
                ("error", &error.to_string()),
            ],
        );
        *reported = true;
    }
}

/// Rule 1, durably: a (re)starting peer's live VCS is empty, so its durable
/// counter image must be cleared too — the recovered values may be stale
/// (another peer may have generated newer timestamps while this one was
/// down). They are not discarded though: each value is a safe *lower bound*
/// on the last timestamp this peer generated, so they seed the KTS node's
/// recovery floors and the next indirect initialization takes
/// `max(observed, recovered)`.
fn kts_from_recovery(engine: &mut StorageEngine) -> KtsNode {
    let mut kts = KtsNode::new(false);
    if !engine.counters().is_empty() {
        let floors: Vec<(Key, Timestamp)> = engine
            .counters()
            .iter()
            .map(|(key, value)| (key.clone(), value))
            .collect();
        kts.seed_recovery_floors(floors);
        engine.record_counters_cleared();
    }
    kts
}

/// A forwarding rule a peer installs at the commit point of a hand-off:
/// requests for positions it is no longer responsible for are re-sent to the
/// peer that took them over (the forward relays the original reply sink, so
/// forwarding is transparent to the requester on any transport).
/// `everything` is set by a graceful leave — anything still reaching a
/// departed peer was routed before the directory flip and belongs to its
/// successor.
struct Forwarding {
    start: u64,
    end: u64,
    everything: bool,
    target: PeerEndpoint,
}

impl Forwarding {
    fn covers(&self, position: u64) -> bool {
        self.everything || in_open_closed_interval(self.start, self.end, position)
    }
}

/// Whether two half-open ring intervals share any position (`start == end`
/// denotes the full ring).
fn ranges_intersect(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 == a.1
        || b.0 == b.1
        || in_open_closed_interval(b.0, b.1, a.1)
        || in_open_closed_interval(a.0, a.1, b.1)
}

/// The ring position a data request is routed by, `None` for protocol and
/// lifecycle messages (which are addressed to a specific peer and never
/// forwarded). A `PutReplicas` has no single position: it is exploded into
/// per-hash puts *before* routing, and each constituent put forwards
/// individually. A hash id outside the configured family (possible over
/// TCP, where any well-formed frame can arrive) also yields `None` — the
/// request is served locally instead of panicking the peer.
fn data_position(request: &Request, family: &HashFamily) -> Option<u64> {
    match request {
        Request::PutReplica { hash, key, .. } | Request::GetReplica { hash, key, .. } => {
            family.function(*hash).map(|function| function.eval(key))
        }
        Request::Timestamp { key, .. } => Some(family.eval_timestamp(key)),
        _ => None,
    }
}

/// Entries each identified client keeps in a peer's dedup window. Sized
/// far above any realistic number of in-flight operations per client (a
/// retry can only arrive while its op is in flight), so an evicted entry
/// means the op completed long ago.
const DEDUP_WINDOW_PER_CLIENT: usize = 256;

/// Client namespaces a peer tracks before evicting the least recently
/// active one.
const DEDUP_MAX_CLIENTS: usize = 1024;

/// Sub-key of a dedup entry for requests with one unit of effect. The
/// constituents of a batched put use their replication hash index instead,
/// which can never collide with this (a `PutReplica` whose hash is not in
/// the family — `TIMESTAMP_HASH_ID` is `u32::MAX` — is rejected before the
/// window is consulted).
const NO_SUB: u32 = u32::MAX;

struct ClientWindow {
    replies: HashMap<(u64, u32), Reply>,
    order: VecDeque<(u64, u32)>,
    last_used: u64,
}

/// A peer's idempotency window: the cached replies of recently applied
/// identified mutations, keyed by client namespace and `(seq, sub)`. A
/// retried or duplicated mutation that hits the window is answered from the
/// cache without being re-applied — this is what makes client retries and
/// frame duplication safe for non-idempotent operations (`gen_ts` counter
/// increments, hand-off installs).
///
/// The window is memory-only on purpose: it protects against *network*
/// duplication within a retry horizon. A peer that crashed lost its live
/// state anyway, and every protocol op it might re-apply after restart is
/// guarded by its own on-disk rules (puts by stamp comparison, installs by
/// the transfer journal).
#[derive(Default)]
struct DedupWindow {
    clients: HashMap<u64, ClientWindow>,
    tick: u64,
}

impl DedupWindow {
    /// The cached reply of `(op, sub)`, if this mutation was already
    /// applied.
    fn lookup(&mut self, op: OpId, sub: u32) -> Option<Reply> {
        self.tick += 1;
        let tick = self.tick;
        let window = self.clients.get_mut(&op.client)?;
        window.last_used = tick;
        window.replies.get(&(op.seq, sub)).cloned()
    }

    /// Records the reply of a freshly applied mutation, evicting the oldest
    /// entry of the client's window (and, when the client cap is hit, the
    /// least recently active client) as needed.
    fn record(&mut self, op: OpId, sub: u32, reply: Reply) {
        self.tick += 1;
        let tick = self.tick;
        if !self.clients.contains_key(&op.client) && self.clients.len() >= DEDUP_MAX_CLIENTS {
            if let Some(stalest) = self
                .clients
                .iter()
                .min_by_key(|(_, window)| window.last_used)
                .map(|(client, _)| *client)
            {
                self.clients.remove(&stalest);
            }
        }
        let window = self
            .clients
            .entry(op.client)
            .or_insert_with(|| ClientWindow {
                replies: HashMap::new(),
                order: VecDeque::new(),
                last_used: tick,
            });
        window.last_used = tick;
        if window.replies.insert((op.seq, sub), reply).is_none() {
            window.order.push_back((op.seq, sub));
            if window.order.len() > DEDUP_WINDOW_PER_CLIENT {
                if let Some(evicted) = window.order.pop_front() {
                    window.replies.remove(&evicted);
                }
            }
        }
    }
}

/// State owned by one peer thread: the storage engine (journaled or
/// ephemeral) holding its replicas, its KTS node whose counter mutations
/// are journaled through the engine, the forwarding rules installed by
/// committed hand-offs, and the idempotency window de-duplicating retried
/// and duplicated mutations.
struct PeerRuntime {
    engine: StorageEngine,
    kts: KtsNode,
    forwards: Vec<Forwarding>,
    dedup: DedupWindow,
    /// Seq allocator of the ops this peer originates (install bundles).
    local_seq: u64,
}

/// Whether a request may ride in a group-commit batch. Only plain data
/// requests batch; protocol and lifecycle messages are barriers — they are
/// processed alone so their own ack/sync ordering stays explicit.
fn batchable(request: &Request) -> bool {
    matches!(
        request,
        Request::PutReplica { .. }
            | Request::PutReplicas { .. }
            | Request::GetReplica { .. }
            | Request::Timestamp { .. }
    )
}

/// Ring capacity of the per-peer slow-request log: the last N completed
/// sampled request trees, scraped by [`Request::SlowRequests`].
const PEER_SLOWLOG_CAPACITY: usize = 128;

/// Short request-kind label, used as the slowlog tree name and in
/// chrome-trace span args.
pub(crate) fn request_kind(request: &Request) -> &'static str {
    match request {
        Request::PutReplica { .. } => "put",
        Request::PutReplicas { .. } => "puts",
        Request::GetReplica { .. } => "get",
        Request::Timestamp { .. } => "timestamp",
        Request::HandoffRange { .. } => "handoff",
        Request::InstallState { .. } => "install",
        Request::Metrics => "metrics",
        Request::SlowRequests { .. } => "slow_requests",
        Request::Shutdown | Request::Crash => "lifecycle",
    }
}

/// Whether a sampled [`TraceContext`] on this request should produce spans
/// at all. Lifecycle and introspection requests bypass the tracer entirely
/// — a metrics or slowlog scrape must never appear in the slowlog it
/// reads, and shutdown is not an operation.
pub(crate) fn traceable(request: &Request) -> bool {
    !matches!(
        request,
        Request::Metrics | Request::SlowRequests { .. } | Request::Shutdown | Request::Crash
    )
}

/// Microseconds of a duration, saturating.
pub(crate) fn us(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

/// The sink-relative timestamp of a past `Instant`, so spans measured with
/// monotonic clocks land on the sink's timeline.
pub(crate) fn sink_ts(sink: &TraceSink, at: Instant) -> u64 {
    sink.now_us().saturating_sub(us(at.elapsed()))
}

/// Records one completed phase span (started at `start`, ending now),
/// linked to its operation by the `trace_id` args entry.
fn emit_phase(sink: &TraceSink, pid: u64, tid: u64, name: &str, start: Instant, trace_id: u64) {
    sink.complete_with_args(
        name,
        pid,
        tid,
        sink_ts(sink, start),
        us(start.elapsed()),
        vec![("trace_id".to_string(), format!("{trace_id:016x}"))],
    );
}

/// Per-request bookkeeping of one sampled unit of the current batch,
/// finalized into a [`RequestTree`] at the batch boundary (after the
/// covering fsync and the reply send, so every phase is measured).
struct TracedUnit {
    context: TraceContext,
    name: &'static str,
    arrived: Instant,
    apply_start: Instant,
    apply_end: Instant,
    /// Index of this unit's deferred reply, to attribute its send time.
    deferred_at: usize,
    /// When the deferred reply was sent (start, end).
    reply: Option<(Instant, Instant)>,
}

/// Finalizes the batch's traced units: one shared `peer.fsync` span linked
/// to every traced request of the group-commit batch, then per-request
/// phase spans and a [`RequestTree`] pushed into the peer's slowlog. The
/// phases partition the request's wall time (queue wait → apply → batch
/// wait → fsync → reply), so the slowlog attribution sums to ~100%.
fn finish_traced_batch(
    traced: &mut Vec<TracedUnit>,
    slowlog: &SpanLog,
    sink: Option<&TraceSink>,
    pid: u64,
    tid: u64,
    sync_start: Instant,
    sync_end: Instant,
) {
    let fsync_us = us(sync_end.saturating_duration_since(sync_start));
    if let Some(sink) = sink {
        let ids = traced
            .iter()
            .map(|unit| format!("{:016x}", unit.context.trace_id))
            .collect::<Vec<_>>()
            .join(",");
        sink.complete_with_args(
            "peer.fsync",
            pid,
            tid,
            sink_ts(sink, sync_start),
            fsync_us,
            vec![("trace_id".to_string(), ids)],
        );
    }
    for unit in traced.drain(..) {
        let queue = unit.apply_start.saturating_duration_since(unit.arrived);
        let apply = unit.apply_end.saturating_duration_since(unit.apply_start);
        let batch_wait = sync_start.saturating_duration_since(unit.apply_end);
        let (reply_start, reply_end) = unit.reply.unwrap_or((sync_end, sync_end));
        let reply = reply_end.saturating_duration_since(reply_start);
        let total = reply_end.saturating_duration_since(unit.arrived);
        if let Some(sink) = sink {
            let args = |extra: bool| {
                let mut args = vec![(
                    "trace_id".to_string(),
                    format!("{:016x}", unit.context.trace_id),
                )];
                if extra {
                    args.push(("kind".to_string(), unit.name.to_string()));
                }
                args
            };
            sink.complete_with_args(
                "peer.queue_wait",
                pid,
                tid,
                sink_ts(sink, unit.arrived),
                us(queue),
                args(false),
            );
            sink.complete_with_args(
                "peer.apply",
                pid,
                tid,
                sink_ts(sink, unit.apply_start),
                us(apply),
                args(true),
            );
            sink.complete_with_args(
                "peer.reply",
                pid,
                tid,
                sink_ts(sink, reply_start),
                us(reply),
                args(false),
            );
        }
        slowlog.push(RequestTree {
            trace_id: unit.context.trace_id,
            name: unit.name.to_string(),
            total_us: us(total),
            phases: vec![
                ("queue_wait".to_string(), us(queue)),
                ("apply".to_string(), us(apply)),
                ("batch_wait".to_string(), us(batch_wait)),
                ("fsync".to_string(), fsync_us),
                ("reply".to_string(), us(reply)),
            ],
        });
    }
}

/// The peer thread main loop, in **drain-apply-sync-reply** form,
/// transport-generic: work arrives as [`Incoming`] items (request + reply
/// sink) and every answer goes through the sink, whether that resolves to
/// an in-process channel or a framed reply on a TCP connection.
///
/// Each iteration collects a batch: the first item blocks on the mailbox,
/// and — when the engine's fsync policy is `GroupCommit` — every further
/// queued data request is drained (up to `max_batch`, waiting at most
/// `max_delay` for stragglers). The whole batch is then applied and
/// journaled, made durable by **one** covering fsync at the batch boundary,
/// and only then acknowledged: N concurrent writers at `Always`-grade
/// durability share a single fsync instead of paying one each. Under every
/// other policy the batch is a single request and the loop behaves exactly
/// as the classic one-request-at-a-time server (appends sync themselves per
/// policy, the boundary sync is skipped).
///
/// A batched [`Request::PutReplicas`] is exploded here into its per-hash
/// constituent puts, each carrying a fan-in sink: the puts route (and
/// forward, under churn) individually, and the original requester gets one
/// [`Reply::PutsAck`] once the last of them completed.
///
/// Stops on `Shutdown` (with a final journal flush), on `Crash` (without
/// one), and — once the peer has gracefully departed and only forwards —
/// after a bounded idle period ([`ClusterConfig::forwarder_reap_idle`]),
/// returning the thread (and its transport binding) to the system.
fn peer_main(
    id: PeerId,
    mailbox: Mailbox,
    directory: Arc<Directory>,
    engine: StorageEngine,
    kts: KtsNode,
    metrics: Option<PeerMetrics>,
    trace: Option<TraceSink>,
) {
    let batching = engine.options().fsync.batching();
    // The distributed-tracing state: the ring of completed request trees
    // every peer keeps (scraped by `SlowRequests`), the per-batch traced
    // units, and the pid lane spans are recorded under. The slowlog only
    // fills when *sampled* requests arrive — the client decides sampling —
    // so an untraced workload pays nothing beyond a few nanoseconds of
    // batch-boundary clock reads.
    let slowlog = SpanLog::new(PEER_SLOWLOG_CAPACITY);
    let mut traced: Vec<TracedUnit> = Vec::new();
    let trace_pid = u64::from(std::process::id());
    let mut engine = engine;
    if let Some(sink) = &trace {
        // Hang a `storage.fsync` span on every WAL sync via the engine's
        // observer hook — the storage-level twin of the batch-covering
        // `peer.fsync` span (which additionally carries the trace ids).
        let sink = sink.clone();
        engine.set_sync_observer(rdht_storage::SyncObserver::new(move |elapsed| {
            let dur = us(elapsed);
            sink.complete_at(
                "storage.fsync",
                trace_pid,
                id.0,
                sink.now_us().saturating_sub(dur),
                dur,
            );
        }));
    }
    let mut runtime = PeerRuntime {
        engine,
        kts,
        forwards: Vec::new(),
        dedup: DedupWindow::default(),
        local_seq: 0,
    };
    // A journal I/O failure (disk full, directory removed, ...) is latched
    // inside the engine; the peer keeps serving its in-memory state —
    // availability over durability — but the degradation must not be
    // silent: report it once.
    let mut poison_reported = false;
    // Set at the commit point of a graceful leave: the peer is a pure
    // forwarder from here on and is reaped once idle.
    let mut departed = false;
    // Sticky: set once this peer departed or retired a forwarding rule
    // whose target died. From then on a data position no rule covers is
    // re-resolved through the directory before any local fallback —
    // retiring a rule must not silently turn the *next* stale request into
    // local service from a store that handed the range away.
    let mut reroute_uncovered = false;
    // A non-batchable request encountered while draining a batch: handled
    // (alone) on the next iteration, preserving arrival order.
    let mut carry: Option<Incoming> = None;
    let mut batch: Vec<Incoming> = Vec::new();
    // Replies owed for the current batch, sent only after the covering sync
    // — durability is acknowledged per op strictly after the fsync that
    // covers it.
    let mut deferred: Vec<(ReplySink, Reply)> = Vec::new();
    'peer: loop {
        let first = match carry.take() {
            Some(incoming) => incoming,
            None if departed => match mailbox.recv_timeout(directory.forwarder_reap_idle) {
                Some(incoming) => incoming,
                // Idle past the grace period (or the transport side is
                // gone): nothing routed under the old view is still in
                // flight — reap the forwarder. The directory already
                // resolves the range to the successor.
                None => break 'peer,
            },
            None => match mailbox.recv() {
                Some(incoming) => incoming,
                None => break 'peer,
            },
        };
        report_journal_poison(id, &runtime.engine, &mut poison_reported);
        match first.request {
            // Lifecycle messages are exempt from the artificial network
            // delay: shutting a cluster down is not a network exchange, and
            // a crash is by definition instantaneous.
            Request::Shutdown => {
                if let Some(m) = &metrics {
                    m.requests.of(&first.request).inc();
                }
                runtime.engine.sync_to_durable();
                report_journal_poison(id, &runtime.engine, &mut poison_reported);
                break 'peer;
            }
            Request::Crash => {
                if let Some(m) = &metrics {
                    m.requests.of(&first.request).inc();
                }
                break 'peer;
            }
            _ => {}
        }
        batch.clear();
        batch.push(first);
        if let Some((max_batch, max_delay)) = batching {
            if batchable(&batch[0].request) {
                // Group-commit drain: this peer is the commit leader for
                // whatever is queued right now. Followers arriving within
                // `max_delay` join the batch; a non-batchable request ends
                // the drain and is carried to the next iteration.
                let deadline = Instant::now() + max_delay;
                while (batch.len() as u64) < max_batch {
                    let now = Instant::now();
                    let next = if max_delay.is_zero() || now >= deadline {
                        mailbox.try_recv()
                    } else {
                        mailbox.recv_timeout(deadline - now)
                    };
                    match next {
                        Some(incoming) if batchable(&incoming.request) => batch.push(incoming),
                        Some(incoming) => {
                            carry = Some(incoming);
                            break;
                        }
                        None => break, // empty / timed out / disconnected
                    }
                }
            }
        }
        if let Some(m) = &metrics {
            m.queue_depth.set(batch.len() as i64);
            m.drain_batch.observe(batch.len() as u64);
        }
        for incoming in batch.drain(..) {
            if let Some(m) = &metrics {
                m.requests.of(&incoming.request).inc();
            }
            let service_started = metrics.is_some().then(Instant::now);
            // The artificial delay models the *network*: it is paid once
            // per message that arrived on the transport, not per
            // constituent put of an exploded batch.
            if !directory.message_delay.is_zero() {
                std::thread::sleep(directory.message_delay);
            }
            let mut units: VecDeque<Incoming> = VecDeque::new();
            units.push_back(incoming);
            while let Some(unit) = units.pop_front() {
                let Incoming {
                    request,
                    reply,
                    trace: unit_trace,
                    arrived,
                } = unit;
                // A sampled context makes this unit produce spans and a
                // slowlog tree at the batch boundary; introspection and
                // lifecycle kinds never trace.
                let sampled =
                    unit_trace.filter(|context| context.is_sampled() && traceable(&request));
                let kind_label = request_kind(&request);
                let apply_start = Instant::now();
                let deferred_mark = deferred.len();
                'unit: {
                    // A batched put fans out locally: one constituent put per
                    // replication hash, each with a fan-in sink that answers
                    // the original requester once all of them completed. The
                    // constituents route individually below — under churn some
                    // may forward to the peer now responsible for them.
                    if let Request::PutReplicas {
                        op,
                        hashes,
                        key,
                        payload,
                        timestamp,
                    } = request
                    {
                        // Constituents inherit the batch's op, disambiguated by
                        // their hash at the applying peer — a retried batch that
                        // was *regrouped* under a changed directory view still
                        // deduplicates per constituent. They also inherit the
                        // batch's trace context and *original* arrival instant,
                        // so queue-wait attribution survives the explosion.
                        let sinks = ReplySink::fanin(hashes.len(), reply);
                        for (hash, sink) in hashes.into_iter().zip(sinks) {
                            units.push_back(Incoming {
                                request: Request::PutReplica {
                                    op,
                                    hash,
                                    key: key.clone(),
                                    payload: payload.clone(),
                                    timestamp,
                                },
                                reply: sink,
                                trace: unit_trace,
                                arrived,
                            });
                        }
                        break 'unit;
                    }
                    // A request for a position this peer handed away is re-sent
                    // to the peer that took it over: it was routed here through
                    // a directory read that predates the hand-off's commit.
                    // Newest rule wins (the same interval can change hands more
                    // than once). A rule whose target is unreachable is
                    // retired; the request is then re-resolved through the
                    // *directory* — if the live responsible is another peer
                    // (the takeover peer departed onward and was reaped, so the
                    // range lives at its successor now) it is re-sent there,
                    // and only when this peer is the live successor again (the
                    // takeover peer crashed) is it served locally, which is
                    // exactly the failover the ring prescribes.
                    let (request, reply) = match data_position(&request, &directory.family) {
                        Some(position) => {
                            let mut pending = Some((request, reply));
                            while let Some(index) = runtime
                                .forwards
                                .iter()
                                .rposition(|rule| rule.covers(position))
                            {
                                let (request, sink) = pending.take().expect("present until sent");
                                match runtime.forwards[index]
                                    .target
                                    .send_with_sink_traced(request, sink, unit_trace)
                                {
                                    Ok(()) => break,
                                    Err(rejected) => {
                                        runtime.forwards.remove(index);
                                        reroute_uncovered = true;
                                        pending = Some((rejected.request, rejected.sink));
                                    }
                                }
                            }
                            if departed || reroute_uncovered {
                                if let Some((request, sink)) = pending.take() {
                                    match directory.responsible_for(position) {
                                        Some((responsible, endpoint)) if responsible != id => {
                                            if let Err(rejected) = endpoint
                                                .send_with_sink_traced(request, sink, unit_trace)
                                            {
                                                pending = Some((rejected.request, rejected.sink));
                                            }
                                        }
                                        _ => pending = Some((request, sink)),
                                    }
                                }
                            }
                            match pending {
                                Some(pair) => pair,
                                None => break 'unit, // forwarded
                            }
                        }
                        None => (request, reply),
                    };
                    match request {
                        Request::PutReplica {
                            op,
                            hash,
                            key,
                            payload,
                            timestamp,
                        } => {
                            // A hash outside the configured family has no ring
                            // position (and can arrive over TCP from any
                            // client): reject it typed instead of panicking.
                            let Some(function) = directory.family.function(hash) else {
                                deferred.push((
                                    reply,
                                    Reply::Error {
                                        reason: format!("unknown replication hash {hash:?}"),
                                    },
                                ));
                                break 'unit;
                            };
                            if let Some(op) = op {
                                if let Some(cached) = runtime.dedup.lookup(op, hash.0) {
                                    directory.dedup.suppressed.inc();
                                    deferred.push((reply, cached));
                                    break 'unit;
                                }
                            }
                            let accepted = match runtime.engine.replicas().get(hash, &key) {
                                Some(existing) => timestamp > existing.stamp,
                                None => true,
                            };
                            if accepted {
                                let position = function.eval(&key);
                                let value = ReplicaValue::new(payload, timestamp);
                                runtime
                                    .engine
                                    .record_replica_put(hash, &key, &value, position);
                            }
                            if let Some(op) = op {
                                runtime.dedup.record(op, hash.0, Reply::PutAck);
                                directory.dedup.applied.inc();
                            }
                            deferred.push((reply, Reply::PutAck));
                        }
                        Request::PutReplicas { .. } => {
                            unreachable!("batched puts are exploded before routing")
                        }
                        Request::GetReplica { hash, key } => {
                            let stored = runtime
                                .engine
                                .replicas()
                                .get(hash, &key)
                                .map(|replica| (replica.payload.clone(), replica.stamp));
                            deferred.push((reply, Reply::Replica(stored)));
                        }
                        Request::Timestamp {
                            op,
                            key,
                            generate,
                            observation_hint,
                        } => {
                            // A retried `gen_ts` must not increment the counter
                            // again: the cached reply returns the timestamp the
                            // first application generated. (A cached
                            // `NeedsInitialization` is safe too — the client
                            // allocates a fresh op for the hint-carrying call.)
                            if let Some(op) = op {
                                if let Some(cached) = runtime.dedup.lookup(op, NO_SUB) {
                                    directory.dedup.suppressed.inc();
                                    deferred.push((reply, cached));
                                    break 'unit;
                                }
                            }
                            let answer = if runtime.kts.has_counter(&key) {
                                let ts = if generate {
                                    runtime
                                        .kts
                                        .gen_ts_with(
                                            &key,
                                            IndirectObservation::nothing,
                                            &mut runtime.engine,
                                        )
                                        .timestamp
                                } else {
                                    runtime
                                        .kts
                                        .last_ts_with(
                                            &key,
                                            LastTsInitPolicy::ObservedMax,
                                            IndirectObservation::nothing,
                                            &mut runtime.engine,
                                        )
                                        .timestamp
                                };
                                Reply::Timestamp(ts)
                            } else {
                                match observation_hint {
                                    None => Reply::NeedsInitialization,
                                    Some(observed) => {
                                        // Section 4.2.2: the counter is (re)born
                                        // from a gathered observation instead of
                                        // a direct hand-over.
                                        if let Some(m) = &metrics {
                                            m.indirect_initializations.inc();
                                        }
                                        let observation = if observed.is_zero() {
                                            IndirectObservation::nothing()
                                        } else {
                                            IndirectObservation::observed(observed)
                                        };
                                        let ts = if generate {
                                            runtime
                                                .kts
                                                .gen_ts_with(
                                                    &key,
                                                    || observation,
                                                    &mut runtime.engine,
                                                )
                                                .timestamp
                                        } else {
                                            runtime
                                                .kts
                                                .last_ts_with(
                                                    &key,
                                                    LastTsInitPolicy::ObservedMax,
                                                    || observation,
                                                    &mut runtime.engine,
                                                )
                                                .timestamp
                                        };
                                        Reply::Timestamp(ts)
                                    }
                                }
                            };
                            if let Some(op) = op {
                                runtime.dedup.record(op, NO_SUB, answer.clone());
                                if matches!(answer, Reply::Timestamp(_)) {
                                    directory.dedup.applied.inc();
                                }
                            }
                            deferred.push((reply, answer));
                        }
                        Request::HandoffRange {
                            op,
                            start,
                            end,
                            target_id,
                            kind,
                            fault,
                        } => {
                            // A coordinator re-send of a hand-off this peer
                            // already resolved (committed *or* aborted) is
                            // answered from the cache: driving a second transfer
                            // for the same op would re-export a range that may
                            // already live elsewhere.
                            if let Some(op) = op {
                                if let Some(cached) = runtime.dedup.lookup(op, NO_SUB) {
                                    directory.dedup.suppressed.inc();
                                    reply.send(cached);
                                    break 'unit;
                                }
                            }
                            // The target is addressed by id and resolved through
                            // the transport: a joiner is bound there before it
                            // is a directory member.
                            let target = match directory.transport.endpoint(target_id) {
                                Ok(endpoint) => endpoint,
                                Err(error) => {
                                    let answer = Reply::HandoffFailed {
                                        reason: format!("cannot resolve hand-off target: {error}"),
                                    };
                                    if let Some(op) = op {
                                        runtime.dedup.record(op, NO_SUB, answer.clone());
                                    }
                                    reply.send(answer);
                                    break 'unit;
                                }
                            };
                            // Phase `Exported`: copy the replicas in range, drain
                            // the counters of the keys timestamped there. The
                            // removals are synced before the bundle ships — under a
                            // deferred-sync policy an unsynced removal could be
                            // resurrected by a crash *after* the counters moved,
                            // breaking Rule 3's "at most one live counter" durably.
                            let export_started = Instant::now();
                            let bundle = export_handoff(
                                &mut runtime.engine,
                                &mut runtime.kts,
                                &directory.family,
                                start,
                                end,
                            );
                            runtime.engine.sync_to_durable();
                            if let Some(m) = &metrics {
                                m.transfer
                                    .export_ns
                                    .observe_duration(export_started.elapsed());
                            }
                            if let (Some(sink), Some(context)) = (&trace, sampled) {
                                emit_phase(
                                    sink,
                                    trace_pid,
                                    id.0,
                                    "peer.handoff_export",
                                    export_started,
                                    context.trace_id,
                                );
                            }
                            let replicas_moved = bundle.replicas.len();
                            let counters_moved = bundle.counters.len();
                            if fault == Some(HandoffFault::CrashAfterExport) {
                                // Fail-stop mid-transfer: the bundle is lost in
                                // flight. Recovery rolls back — the journal still
                                // holds every replica, and the drained counters
                                // re-initialize indirectly.
                                directory.mark_dead(id);
                                break 'peer;
                            }
                            // Phase `Installed`: ship the bundle and wait for
                            // the target to journal it, re-sending on a pure
                            // timeout under the *same* install op — a target
                            // that journaled the bundle but whose ack was lost
                            // re-acknowledges from its dedup cache instead of
                            // re-applying a bundle that interleaved counter
                            // activity may have superseded.
                            let install_op = Some(OpId {
                                client: id.0,
                                seq: runtime.local_seq,
                            });
                            runtime.local_seq += 1;
                            let mut acked = false;
                            let install_started = Instant::now();
                            for _ in 0..INSTALL_ATTEMPTS {
                                let outcome = match target.send(Request::InstallState {
                                    op: install_op,
                                    start,
                                    end,
                                    bundle: bundle.clone(),
                                }) {
                                    Ok(pending) => pending.wait(INSTALL_ACK_TIMEOUT),
                                    Err(error) => Err(CallError::Transport(error)),
                                };
                                match outcome {
                                    Ok(Reply::InstallAck { .. }) => {
                                        acked = true;
                                        break;
                                    }
                                    // Only silence warrants a re-send; a
                                    // teardown or rejection means the target is
                                    // gone or refused — definitive either way.
                                    Err(CallError::Timeout) => continue,
                                    _ => break,
                                }
                            }
                            // Everything between the export and here is the
                            // hand-off stall of ROADMAP item 5: the peer loop
                            // serving nothing while the bundle ships.
                            let stalled = install_started.elapsed();
                            if let Some(m) = &metrics {
                                m.handoff_stall_ns
                                    .add(u64::try_from(stalled.as_nanos()).unwrap_or(u64::MAX));
                                m.transfer.install_ns.observe_duration(stalled);
                            }
                            if let (Some(sink), Some(context)) = (&trace, sampled) {
                                emit_phase(
                                    sink,
                                    trace_pid,
                                    id.0,
                                    "peer.handoff_install",
                                    install_started,
                                    context.trace_id,
                                );
                            }
                            if !acked {
                                // The target died (or stayed silent through the
                                // whole retry budget) before journaling the
                                // bundle: abort without committing. This peer
                                // keeps its replicas (the export only copied
                                // them) and keeps serving; the moved counters
                                // are gone, which only costs indirect re-inits.
                                let answer = Reply::HandoffFailed {
                                    reason: "hand-off target never acknowledged the install"
                                        .to_string(),
                                };
                                if let Some(op) = op {
                                    runtime.dedup.record(op, NO_SUB, answer.clone());
                                }
                                reply.send(answer);
                                break 'unit;
                            }
                            if fault == Some(HandoffFault::CrashAfterInstall) {
                                // Fail-stop between the target's ack and the commit:
                                // the target's journal holds the state, so a retried
                                // join/leave completes the transfer.
                                directory.mark_dead(id);
                                break 'peer;
                            }
                            // Commit point — all three steps inside one serially
                            // processed request, so no client request interleaves:
                            // flip the directory, prune the moved range from the
                            // journal, start forwarding.
                            let commit_started = Instant::now();
                            match kind {
                                HandoffKind::Join => directory.revive(target_id, target.clone()),
                                HandoffKind::Leave => directory.mark_dead(id),
                            }
                            commit_handoff(&mut runtime.engine, start, end);
                            runtime.forwards.push(Forwarding {
                                start,
                                end,
                                everything: kind == HandoffKind::Leave,
                                target,
                            });
                            // The commit record must be durable before the
                            // coordinator learns of the flip (a crash right after
                            // the reply must not replay the pruned range back in);
                            // for a departing peer this is also its final flush.
                            runtime.engine.sync_to_durable();
                            if let Some(m) = &metrics {
                                m.transfer
                                    .commit_ns
                                    .observe_duration(commit_started.elapsed());
                            }
                            if let (Some(sink), Some(context)) = (&trace, sampled) {
                                emit_phase(
                                    sink,
                                    trace_pid,
                                    id.0,
                                    "peer.handoff_commit",
                                    commit_started,
                                    context.trace_id,
                                );
                            }
                            if kind == HandoffKind::Leave {
                                departed = true;
                            }
                            let answer = Reply::HandoffComplete {
                                replicas_moved,
                                counters_moved,
                            };
                            if let Some(op) = op {
                                runtime.dedup.record(op, NO_SUB, answer.clone());
                                directory.dedup.applied.inc();
                            }
                            reply.send(answer);
                        }
                        Request::InstallState {
                            op,
                            start,
                            end,
                            bundle,
                        } => {
                            // A re-shipped bundle whose ack was lost must not be
                            // re-applied: interleaved counter activity may have
                            // advanced past the bundle's images, and re-installing
                            // would regress them. The cached ack answers instead.
                            if let Some(op) = op {
                                if let Some(cached) = runtime.dedup.lookup(op, NO_SUB) {
                                    directory.dedup.suppressed.inc();
                                    reply.send(cached);
                                    break 'unit;
                                }
                            }
                            let report =
                                install_handoff(&mut runtime.engine, &mut runtime.kts, bundle);
                            // This peer owns (start, end] again: retire any
                            // forwarding rule that overlaps it, or a former owner
                            // and its round-tripped successor would bounce requests
                            // forever.
                            runtime.forwards.retain(|rule| {
                                !ranges_intersect((rule.start, rule.end), (start, end))
                            });
                            // The bundle must be durable before the ack: the source
                            // treats the ack as licence to prune its own copy at
                            // commit, so an unsynced install journal would be the
                            // only holder of the moved state.
                            runtime.engine.sync_to_durable();
                            let answer = Reply::InstallAck {
                                replicas_installed: report.replicas_installed,
                                counters_received: report.counters_received,
                            };
                            if let Some(op) = op {
                                runtime.dedup.record(op, NO_SUB, answer.clone());
                                directory.dedup.applied.inc();
                            }
                            reply.send(answer);
                        }
                        Request::Metrics => {
                            // Served locally wherever it lands (a scrape targets
                            // a peer, not a key) and answered immediately:
                            // reading instruments has no durability ordering.
                            let answer = match &metrics {
                                Some(m) => Reply::Metrics(encode(m.registry())),
                                None => Reply::Error {
                                    reason: "metrics are disabled on this peer".to_string(),
                                },
                            };
                            reply.send(answer);
                        }
                        Request::SlowRequests { k } => {
                            // Introspection, like a metrics scrape: served
                            // wherever it lands, answered immediately, and —
                            // per the sampler-bypass rule — never traced and
                            // never entered into the slowlog it reads.
                            reply.send(Reply::SlowRequests(slowlog.slowest(k as usize)));
                        }
                        Request::Shutdown | Request::Crash => {
                            unreachable!("lifecycle requests never enter a batch")
                        }
                    }
                } // 'unit
                if let Some(context) = sampled {
                    // Only units that owe a deferred (post-fsync) reply get
                    // a slowlog tree: forwarded units belong to the peer
                    // that serves them, and inline-answered protocol
                    // requests record their own phase spans above.
                    if deferred.len() > deferred_mark {
                        traced.push(TracedUnit {
                            context,
                            name: kind_label,
                            arrived,
                            apply_start,
                            apply_end: Instant::now(),
                            deferred_at: deferred_mark,
                            reply: None,
                        });
                    }
                }
            }
            if let (Some(m), Some(started)) = (&metrics, service_started) {
                m.service_ns.observe_duration(started.elapsed());
            }
        }
        // The batch boundary: one covering fsync for everything the batch
        // journaled (free if the batch was read-only), then the
        // acknowledgements.
        let sync_start = Instant::now();
        if batching.is_some() {
            runtime.engine.sync_to_durable();
        }
        let sync_end = Instant::now();
        if traced.is_empty() {
            for (reply, answer) in deferred.drain(..) {
                reply.send(answer);
            }
        } else {
            // Traced units in the batch: time each owed reply's send, then
            // finalize the units into spans and slowlog trees — including
            // the one covering-fsync span the whole group-commit batch
            // shares.
            for (index, (reply, answer)) in deferred.drain(..).enumerate() {
                let send_start = Instant::now();
                reply.send(answer);
                if let Some(unit) = traced.iter_mut().find(|unit| unit.deferred_at == index) {
                    unit.reply = Some((send_start, Instant::now()));
                }
            }
            finish_traced_batch(
                &mut traced,
                &slowlog,
                trace.as_ref(),
                trace_pid,
                id.0,
                sync_start,
                sync_end,
            );
        }
    }
}
