//! The cluster: peer threads, the shared membership directory and lifecycle
//! management — including real crash/restart recovery when peers are backed
//! by `rdht-storage` directories.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdht_core::durability::DurableState;
use rdht_core::kts::{IndirectObservation, KtsNode};
use rdht_core::{LastTsInitPolicy, ReplicaValue, Timestamp};
use rdht_hashing::{HashFamily, HashId, Key};
use rdht_membership::{
    commit_handoff, export_handoff, install_handoff, plan_join, plan_leave, MembershipError,
};
use rdht_overlay::in_open_closed_interval;
use rdht_storage::{StorageEngine, StorageOptions};

use crate::client::ClusterClient;
use crate::message::{HandoffFault, HandoffKind, Reply, Request};

/// How long the peer driving a hand-off waits for the target to journal the
/// shipped bundle before aborting the transfer. This is the only deadline in
/// the protocol: the coordinator itself waits on channel disconnect rather
/// than a clock, so a slow-but-alive source can never race a coordinator
/// timeout into inconsistent directory state.
const INSTALL_ACK_TIMEOUT: Duration = Duration::from_secs(30);

/// Default bounded-idle grace period after which a gracefully departed
/// peer's forwarder thread is reaped ([`ClusterConfig::forwarder_reap_idle`]).
/// Requests routed under the pre-departure directory view arrive within
/// channel latency, so anything still idle after this has nothing left to
/// forward; the directory serves the range from the successor either way.
const DEFAULT_FORWARDER_REAP_IDLE: Duration = Duration::from_secs(30);

/// Identifier of a peer on the cluster ring (the same 64-bit space keys are
/// hashed into).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u64);

/// Where (and how) a cluster persists its peers' state.
#[derive(Clone, Debug)]
pub struct ClusterStorage {
    /// Root directory; each peer owns the subdirectory
    /// `peer-<id:016x>` underneath it.
    pub root: PathBuf,
    /// Engine tuning (fsync policy, snapshot cadence) shared by every peer.
    pub options: StorageOptions,
}

impl ClusterStorage {
    /// Storage under `root` with default engine options (fsync `Always`).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ClusterStorage {
            root: root.into(),
            options: StorageOptions::default(),
        }
    }

    /// Storage under `root` with explicit engine options.
    pub fn with_options(root: impl Into<PathBuf>, options: StorageOptions) -> Self {
        ClusterStorage {
            root: root.into(),
            options,
        }
    }

    /// The on-disk directory of one peer.
    pub fn peer_dir(&self, peer: PeerId) -> PathBuf {
        self.root.join(format!("peer-{:016x}", peer.0))
    }
}

/// Tunables of a cluster deployment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of peer threads.
    pub num_peers: usize,
    /// Number of replication hash functions `|Hr|`.
    pub num_replicas: usize,
    /// Seed for peer identifiers and the hash family.
    pub seed: u64,
    /// Artificial delay injected before a peer processes each *data* message,
    /// modelling network latency. Zero by default so tests run fast.
    /// Lifecycle messages (`Shutdown`, `Crash`) are exempt: tearing a
    /// cluster down is a local operation, not a network exchange, so
    /// `Cluster::shutdown` stays prompt regardless of the modelled latency.
    pub message_delay: Duration,
    /// When set, every peer journals its replicas and counters to its own
    /// directory under `storage.root`, and [`Cluster::restart_peer`] can
    /// bring a crashed peer back with its durable state. With
    /// `FsyncPolicy::GroupCommit` in the storage options, every peer runs
    /// its request loop in drain-apply-sync-reply mode: all queued client
    /// requests (bounded by `max_batch`) are drained, applied and
    /// journaled, made durable by **one** covering fsync, and only then
    /// acknowledged — N concurrent writers share one fsync instead of
    /// paying N.
    pub storage: Option<ClusterStorage>,
    /// How long a gracefully departed peer lingers as a forwarder after its
    /// last message before its thread (and channel) is reaped. Requests
    /// reaching the peer after the reap are re-routed through the shared
    /// directory by whoever holds a stale forwarding rule, so the range
    /// keeps serving; the reap just returns the thread early on long-lived
    /// clusters.
    pub forwarder_reap_idle: Duration,
}

impl ClusterConfig {
    /// A configuration with `num_peers` peers, `num_replicas` replication
    /// functions, no artificial delay and no durability.
    pub fn new(num_peers: usize, num_replicas: usize, seed: u64) -> Self {
        ClusterConfig {
            num_peers,
            num_replicas,
            seed,
            message_delay: Duration::ZERO,
            storage: None,
            forwarder_reap_idle: DEFAULT_FORWARDER_REAP_IDLE,
        }
    }

    /// Returns a copy with peer-state durability under `storage`.
    pub fn with_storage(mut self, storage: ClusterStorage) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Returns a copy with the given forwarder reap grace period.
    pub fn with_forwarder_reap_idle(mut self, idle: Duration) -> Self {
        self.forwarder_reap_idle = idle;
        self
    }
}

/// Shared, read-mostly view of cluster membership: which peers exist, which
/// are alive, and how to reach them.
pub(crate) struct Directory {
    pub(crate) family: HashFamily,
    /// Peer ring: id -> (mailbox, alive flag).
    pub(crate) peers: RwLock<BTreeMap<PeerId, (Sender<Request>, bool)>>,
    pub(crate) message_delay: Duration,
    pub(crate) forwarder_reap_idle: Duration,
}

impl Directory {
    /// The peer currently responsible for a position: the first *alive* peer
    /// clockwise from it (successor-on-the-ring responsibility).
    pub(crate) fn responsible_for(&self, position: u64) -> Option<(PeerId, Sender<Request>)> {
        let peers = self.peers.read();
        peers
            .range(PeerId(position)..)
            .chain(peers.iter())
            .find(|(_, (_, alive))| *alive)
            .map(|(id, (sender, _))| (*id, sender.clone()))
    }

    /// Marks a peer as dead (its mailbox stays but is never selected again).
    pub(crate) fn mark_dead(&self, peer: PeerId) {
        if let Some(entry) = self.peers.write().get_mut(&peer) {
            entry.1 = false;
        }
    }

    /// Re-registers a restarted peer under a fresh mailbox and marks it
    /// alive again.
    pub(crate) fn revive(&self, peer: PeerId, sender: Sender<Request>) {
        self.peers.write().insert(peer, (sender, true));
    }

    /// Number of live peers.
    pub(crate) fn live_count(&self) -> usize {
        self.peers
            .read()
            .values()
            .filter(|(_, alive)| *alive)
            .count()
    }

    /// Sorted ring positions of the live peers — the input the membership
    /// planner works on.
    pub(crate) fn alive_ids_sorted(&self) -> Vec<u64> {
        self.peers
            .read()
            .iter()
            .filter(|(_, (_, alive))| *alive)
            .map(|(id, _)| id.0)
            .collect()
    }
}

/// What [`Cluster::restart_peer`] recovered from a peer's storage directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Replicas rebuilt from the snapshot + WAL and served again.
    pub recovered_replicas: usize,
    /// Durable counter images found on disk. Per the paper's Rule 1 these
    /// are **not** resurrected into the live Valid Counter Set (another peer
    /// may have generated newer timestamps while this one was down); they
    /// are seeded as *recovery floors* instead, so the indirect
    /// re-initialization of Section 4.2.2 takes `max(observed, recovered)`
    /// and the counter cannot regress even when every replica holder of a
    /// key crashed at once.
    pub recovered_counters: usize,
    /// Storage generation (snapshot/WAL pair) the state was recovered from.
    pub generation: u64,
    /// Whether recovery had to discard a torn WAL tail.
    pub torn_tail: bool,
}

/// What [`Cluster::join_peer`] moved to the freshly joined peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinReport {
    /// The peer that joined.
    pub peer: PeerId,
    /// The successor whose range was split (equals `peer` when the joiner
    /// bootstrapped an empty ring).
    pub source: PeerId,
    /// Exclusive start of the interval the joiner took over.
    pub range_start: u64,
    /// Inclusive end of the interval the joiner took over.
    pub range_end: u64,
    /// Replicas shipped from the source.
    pub replicas_moved: usize,
    /// Counters handed over directly (Section 4.2.1).
    pub counters_moved: usize,
}

/// What [`Cluster::leave_peer`] moved to the departing peer's successor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaveReport {
    /// The peer that left gracefully.
    pub peer: PeerId,
    /// The successor that absorbed its range.
    pub target: PeerId,
    /// Exclusive start of the interval that moved.
    pub range_start: u64,
    /// Inclusive end of the interval that moved.
    pub range_end: u64,
    /// Replicas shipped to the successor.
    pub replicas_moved: usize,
    /// Counters handed over directly — the direct algorithm of Section
    /// 4.2.1, which is what makes the graceful path free of indirect
    /// re-initializations.
    pub counters_moved: usize,
}

/// A running cluster of peer threads.
pub struct Cluster {
    directory: Arc<Directory>,
    handles: BTreeMap<PeerId, JoinHandle<()>>,
    config: ClusterConfig,
}

impl Cluster {
    /// Spawns a cluster with `num_peers` peers and `num_replicas` replication
    /// hash functions, with no artificial message delay and no durability.
    pub fn spawn(num_peers: usize, num_replicas: usize, seed: u64) -> Self {
        Cluster::spawn_with(ClusterConfig::new(num_peers, num_replicas, seed))
    }

    /// Spawns a cluster from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `num_peers` is zero, or when durability is configured and
    /// a peer's storage directory cannot be opened.
    pub fn spawn_with(config: ClusterConfig) -> Self {
        assert!(config.num_peers > 0, "a cluster needs at least one peer");
        let family = HashFamily::new(config.num_replicas, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc1u64);
        let mut ring: BTreeMap<PeerId, (Sender<Request>, bool)> = BTreeMap::new();
        let mut receivers: Vec<(PeerId, Receiver<Request>)> = Vec::new();
        while ring.len() < config.num_peers {
            let id = PeerId(rng.gen());
            if ring.contains_key(&id) {
                continue;
            }
            let (sender, receiver) = unbounded();
            ring.insert(id, (sender, true));
            receivers.push((id, receiver));
        }
        let directory = Arc::new(Directory {
            family,
            peers: RwLock::new(ring),
            message_delay: config.message_delay,
            forwarder_reap_idle: config.forwarder_reap_idle,
        });
        let handles = receivers
            .into_iter()
            .map(|(id, receiver)| {
                let mut engine = open_engine(&config.storage, id);
                let kts = kts_from_recovery(&mut engine);
                let directory = Arc::clone(&directory);
                let handle =
                    std::thread::spawn(move || peer_main(id, receiver, directory, engine, kts));
                (id, handle)
            })
            .collect();
        Cluster {
            directory,
            handles,
            config,
        }
    }

    /// The configuration the cluster was spawned with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Creates a client handle. Clients are cheap; create one per thread that
    /// wants to issue operations.
    pub fn client(&self) -> ClusterClient {
        ClusterClient::new(Arc::clone(&self.directory))
    }

    /// All peer identifiers, in ring order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.directory.peers.read().keys().copied().collect()
    }

    /// Number of live peers.
    pub fn live_peers(&self) -> usize {
        self.directory.live_count()
    }

    /// Whether `peer`'s thread has exited — crashed, shut down, or reaped as
    /// an idle forwarder after a graceful leave. `true` for unknown ids and
    /// for peers whose handle was already joined.
    pub fn peer_thread_finished(&self, peer: PeerId) -> bool {
        self.handles
            .get(&peer)
            .map(|handle| handle.is_finished())
            .unwrap_or(true)
    }

    /// The raw mailbox sender of a peer — tests use it to inject requests
    /// that bypass the directory, modelling messages routed under a stale
    /// membership view (in flight across a hand-off commit).
    #[cfg(test)]
    pub(crate) fn peer_sender(&self, peer: PeerId) -> Option<Sender<Request>> {
        self.directory
            .peers
            .read()
            .get(&peer)
            .map(|(sender, _)| sender.clone())
    }

    /// Whether `peer` is currently alive (`false` for dead or unknown ids).
    pub fn peer_is_alive(&self, peer: PeerId) -> bool {
        self.directory
            .peers
            .read()
            .get(&peer)
            .map(|(_, alive)| *alive)
            .unwrap_or(false)
    }

    /// The peer currently responsible for timestamping `key` — useful for
    /// tests that want to crash exactly that peer.
    pub fn timestamp_responsible(&self, key: &Key) -> Option<PeerId> {
        let position = self.directory.family.eval_timestamp(key);
        self.directory.responsible_for(position).map(|(id, _)| id)
    }

    /// The peer currently responsible for `key` under replication function
    /// `hash`.
    pub fn replica_responsible(&self, hash: HashId, key: &Key) -> Option<PeerId> {
        let position = self.directory.family.eval(hash, key);
        self.directory.responsible_for(position).map(|(id, _)| id)
    }

    /// Crashes a peer: it is marked dead in the directory (so it stops being
    /// responsible for anything) and its thread stops without any final
    /// flush — a fail-stop failure. Everything in the peer's memory (its
    /// live counters, and its replicas when the cluster has no storage) is
    /// lost; what its journal already holds survives on disk and
    /// [`Cluster::restart_peer`] can recover it.
    ///
    /// Errors with [`MembershipError::UnknownPeer`] for an id that was never
    /// a member and [`MembershipError::AlreadyDead`] for one that is already
    /// down — a crash that silently "succeeds" against the wrong id is how
    /// failover tests end up testing nothing.
    pub fn crash_peer(&self, peer: PeerId) -> Result<(), MembershipError> {
        let sender = {
            let peers = self.directory.peers.read();
            match peers.get(&peer) {
                None => return Err(MembershipError::UnknownPeer(peer.0)),
                Some((_, false)) => return Err(MembershipError::AlreadyDead(peer.0)),
                Some((sender, true)) => sender.clone(),
            }
        };
        self.directory.mark_dead(peer);
        let _ = sender.send(Request::Crash);
        Ok(())
    }

    /// Restarts a crashed peer from its on-disk directory: joins the dead
    /// thread, recovers the storage generation (snapshot + WAL, tolerating a
    /// torn tail), re-registers the peer alive in the directory and respawns
    /// its thread over the recovered replicas. An alive peer is crashed
    /// first (a hard restart).
    ///
    /// The live Valid Counter Set starts **empty** (Rule 1) — the durable
    /// counter images are cleared from the journal and seeded as *recovery
    /// floors*: the first timestamp request per key still takes the indirect
    /// path of Section 4.2.2, but initializes at `max(observed, recovered)`
    /// so currency cannot regress when the observation misses replicas.
    ///
    /// On a cluster without storage the peer simply rejoins empty. Errors
    /// with [`MembershipError::UnknownPeer`] for an id that was never a
    /// member.
    pub fn restart_peer(&mut self, peer: PeerId) -> Result<RestartReport, MembershipError> {
        if !self.directory.peers.read().contains_key(&peer) {
            return Err(MembershipError::UnknownPeer(peer.0));
        }
        // Make sure the old thread is gone before touching its directory:
        // two threads must never share a WAL. The thread can still be
        // running even when the peer is marked dead — a gracefully departed
        // peer lingers as a forwarder — so send the stop signal directly
        // instead of going through crash_peer's liveness check (which would
        // skip it and leave handle.join() waiting forever).
        let sender = self
            .directory
            .peers
            .read()
            .get(&peer)
            .map(|(sender, _)| sender.clone());
        self.directory.mark_dead(peer);
        if let Some(sender) = sender {
            let _ = sender.send(Request::Crash);
        }
        if let Some(handle) = self.handles.remove(&peer) {
            let _ = handle.join();
        }

        let mut engine = open_engine(&self.config.storage, peer);
        let report = RestartReport {
            recovered_replicas: engine.replicas().len(),
            recovered_counters: engine.counters().len(),
            generation: engine.generation(),
            torn_tail: engine.stats().recovered_torn_tail,
        };
        let kts = kts_from_recovery(&mut engine);

        let (sender, receiver) = unbounded();
        let directory = Arc::clone(&self.directory);
        let handle = std::thread::spawn(move || peer_main(peer, receiver, directory, engine, kts));
        self.directory.revive(peer, sender);
        self.handles.insert(peer, handle);
        Ok(report)
    }

    /// Adds a live peer to the running cluster.
    ///
    /// The joiner's successor splits its responsibility range
    /// (`rdht_membership::plan_join`): replicas in `(pred, new_id]` and the
    /// counters of the keys timestamped there move to the joiner through the
    /// journaled hand-off protocol, and the successor registers the joiner
    /// in the shared directory at the commit point — requests that were
    /// routed to the successor meanwhile are forwarded, so clients never
    /// observe a half-moved range. On a storage-backed cluster every phase
    /// is journaled; a crash mid-transfer is recovered by
    /// [`Cluster::restart_peer`] + a retried `join_peer`.
    pub fn join_peer(&mut self, new_id: PeerId) -> Result<JoinReport, MembershipError> {
        self.join_peer_impl(new_id, None)
    }

    /// [`Cluster::join_peer`] with fault injection: the source peer
    /// fail-stops at the chosen phase boundary. Crash-recovery tests use
    /// this to exercise the rollback/completion guarantees of the transfer
    /// journal.
    pub fn join_peer_with_fault(
        &mut self,
        new_id: PeerId,
        fault: HandoffFault,
    ) -> Result<JoinReport, MembershipError> {
        self.join_peer_impl(new_id, Some(fault))
    }

    fn join_peer_impl(
        &mut self,
        new_id: PeerId,
        fault: Option<HandoffFault>,
    ) -> Result<JoinReport, MembershipError> {
        if self.directory.peers.read().contains_key(&new_id) {
            return Err(MembershipError::AlreadyMember(new_id.0));
        }
        let alive = self.directory.alive_ids_sorted();

        // Spawn the joiner's thread first, unregistered: it must be able to
        // process the InstallState message, but no client may route to it
        // until the hand-off commits. Reopening an existing directory (a
        // retry after a crash mid-transfer) recovers what the previous
        // attempt already journaled.
        let mut engine = open_engine(&self.config.storage, new_id);
        let replicas_recovered = engine.replicas().len();
        let kts = kts_from_recovery(&mut engine);
        let (sender, receiver) = unbounded();
        let directory = Arc::clone(&self.directory);
        let handle =
            std::thread::spawn(move || peer_main(new_id, receiver, directory, engine, kts));

        if alive.is_empty() {
            // Bootstrapping an empty ring: nothing to split.
            self.directory.revive(new_id, sender);
            self.handles.insert(new_id, handle);
            return Ok(JoinReport {
                peer: new_id,
                source: new_id,
                range_start: new_id.0,
                range_end: new_id.0,
                replicas_moved: replicas_recovered,
                counters_moved: 0,
            });
        }

        let plan = match plan_join(&alive, new_id.0) {
            Ok(plan) => plan,
            Err(error) => {
                let _ = sender.send(Request::Crash);
                let _ = handle.join();
                return Err(error);
            }
        };
        let source = PeerId(plan.source);
        let source_sender = self
            .directory
            .peers
            .read()
            .get(&source)
            .map(|(sender, _)| sender.clone())
            .expect("the planned source is a live directory member");

        let (reply_tx, reply_rx) = bounded(1);
        let sent = source_sender.send(Request::HandoffRange {
            start: plan.range_start,
            end: plan.range_end,
            target_id: new_id,
            target: sender.clone(),
            kind: HandoffKind::Join,
            fault,
            reply: reply_tx,
        });
        // Wait on disconnect, not a clock: a slow-but-alive source must
        // never race a coordinator deadline (it could commit — registering
        // the joiner — after the coordinator already tore the joiner down).
        // If the source fail-stops, its mailbox (and the queued reply
        // sender) is dropped and this recv errors promptly; if it is alive,
        // its own bounded install-ack wait guarantees it eventually replies.
        let outcome = match sent {
            Ok(()) => reply_rx.recv().map_err(|_| ()),
            Err(_) => Err(()),
        };
        match outcome {
            Ok(Reply::HandoffComplete {
                replicas_moved,
                counters_moved,
            }) => {
                // The source registered the joiner at its commit point.
                self.handles.insert(new_id, handle);
                Ok(JoinReport {
                    peer: new_id,
                    source,
                    range_start: plan.range_start,
                    range_end: plan.range_end,
                    replicas_moved,
                    counters_moved,
                })
            }
            other => {
                // The hand-off never committed (the source crashed or timed
                // out): tear the unregistered joiner down. Whatever the
                // joiner already journaled survives in its directory; a
                // retried join_peer for the same id recovers it and
                // completes the transfer.
                let _ = sender.send(Request::Crash);
                let _ = handle.join();
                let reason = match other {
                    Ok(Reply::HandoffFailed { reason }) => reason,
                    Ok(reply) => format!("unexpected hand-off reply: {reply:?}"),
                    Err(()) => "the source peer crashed mid-transfer".to_string(),
                };
                Err(MembershipError::TransferFailed(reason))
            }
        }
    }

    /// Gracefully removes a live peer: the direct algorithm of Section
    /// 4.2.1.
    ///
    /// The departing peer ships every replica and counter of its range
    /// `(pred, leaving]` to its live successor, unregisters itself at the
    /// commit point and keeps running as a pure forwarder (requests routed
    /// to it before the flip are re-sent to the successor) until the cluster
    /// shuts down. Because the counters move directly, subsequent timestamp
    /// requests at the successor are served from a valid counter — **zero**
    /// indirect re-initializations, in contrast to a crash.
    pub fn leave_peer(&mut self, leaving: PeerId) -> Result<LeaveReport, MembershipError> {
        self.leave_peer_impl(leaving, None)
    }

    /// [`Cluster::leave_peer`] with fault injection, for crash-recovery
    /// tests: the departing peer fail-stops at the chosen phase boundary
    /// instead of completing its hand-off.
    pub fn leave_peer_with_fault(
        &mut self,
        leaving: PeerId,
        fault: HandoffFault,
    ) -> Result<LeaveReport, MembershipError> {
        self.leave_peer_impl(leaving, Some(fault))
    }

    fn leave_peer_impl(
        &mut self,
        leaving: PeerId,
        fault: Option<HandoffFault>,
    ) -> Result<LeaveReport, MembershipError> {
        let leaving_sender = {
            let peers = self.directory.peers.read();
            match peers.get(&leaving) {
                None => return Err(MembershipError::UnknownPeer(leaving.0)),
                Some((_, false)) => return Err(MembershipError::AlreadyDead(leaving.0)),
                Some((sender, true)) => sender.clone(),
            }
        };
        let alive = self.directory.alive_ids_sorted();
        let plan = plan_leave(&alive, leaving.0)?;
        let target = PeerId(plan.target);
        let target_sender = self
            .directory
            .peers
            .read()
            .get(&target)
            .map(|(sender, _)| sender.clone())
            .expect("the planned target is a live directory member");

        let (reply_tx, reply_rx) = bounded(1);
        let sent = leaving_sender.send(Request::HandoffRange {
            start: plan.range_start,
            end: plan.range_end,
            target_id: target,
            target: target_sender,
            kind: HandoffKind::Leave,
            fault,
            reply: reply_tx,
        });
        // Disconnect-aware wait, same reasoning as join_peer: no clock can
        // race the departing peer into an inconsistent directory.
        let outcome = match sent {
            Ok(()) => reply_rx.recv().map_err(|_| ()),
            Err(_) => Err(()),
        };
        match outcome {
            Ok(Reply::HandoffComplete {
                replicas_moved,
                counters_moved,
            }) => Ok(LeaveReport {
                peer: leaving,
                target,
                range_start: plan.range_start,
                range_end: plan.range_end,
                replicas_moved,
                counters_moved,
            }),
            other => {
                let reason = match other {
                    Ok(Reply::HandoffFailed { reason }) => reason,
                    Ok(reply) => format!("unexpected hand-off reply: {reply:?}"),
                    Err(()) => "the departing peer crashed mid-transfer".to_string(),
                };
                Err(MembershipError::TransferFailed(reason))
            }
        }
    }

    /// Stops every peer thread (flushing their journals) and waits for them
    /// to finish.
    pub fn shutdown(self) {
        {
            let peers = self.directory.peers.read();
            for (sender, _) in peers.values() {
                let _ = sender.send(Request::Shutdown);
            }
        }
        for (_, handle) in self.handles {
            let _ = handle.join();
        }
    }
}

/// Opens the storage engine backing one peer: a real journaled engine when
/// the cluster is configured with storage, an ephemeral in-memory one
/// otherwise.
fn open_engine(storage: &Option<ClusterStorage>, peer: PeerId) -> StorageEngine {
    match storage {
        Some(storage) => {
            let dir = storage.peer_dir(peer);
            StorageEngine::open(&dir, storage.options)
                .unwrap_or_else(|error| panic!("cannot open peer storage at {dir:?}: {error}"))
        }
        None => StorageEngine::ephemeral(),
    }
}

/// Reports a latched journal failure to stderr, once per peer lifetime.
fn report_journal_poison(id: PeerId, engine: &StorageEngine, reported: &mut bool) {
    if *reported {
        return;
    }
    if let Some(error) = engine.poison_error() {
        eprintln!(
            "rdht-net peer {:016x}: journal failed ({error}); continuing \
             WITHOUT durability — state written from here on will not \
             survive a crash",
            id.0
        );
        *reported = true;
    }
}

/// Rule 1, durably: a (re)starting peer's live VCS is empty, so its durable
/// counter image must be cleared too — the recovered values may be stale
/// (another peer may have generated newer timestamps while this one was
/// down). They are not discarded though: each value is a safe *lower bound*
/// on the last timestamp this peer generated, so they seed the KTS node's
/// recovery floors and the next indirect initialization takes
/// `max(observed, recovered)`.
fn kts_from_recovery(engine: &mut StorageEngine) -> KtsNode {
    let mut kts = KtsNode::new(false);
    if !engine.counters().is_empty() {
        let floors: Vec<(Key, Timestamp)> = engine
            .counters()
            .iter()
            .map(|(key, value)| (key.clone(), value))
            .collect();
        kts.seed_recovery_floors(floors);
        engine.record_counters_cleared();
    }
    kts
}

/// A forwarding rule a peer installs at the commit point of a hand-off:
/// requests for positions it is no longer responsible for are re-sent to the
/// peer that took them over (the request carries the client's reply channel,
/// so forwarding is transparent). `everything` is set by a graceful leave —
/// anything still reaching a departed peer was routed before the directory
/// flip and belongs to its successor.
struct Forwarding {
    start: u64,
    end: u64,
    everything: bool,
    target: Sender<Request>,
}

impl Forwarding {
    fn covers(&self, position: u64) -> bool {
        self.everything || in_open_closed_interval(self.start, self.end, position)
    }
}

/// Whether two half-open ring intervals share any position (`start == end`
/// denotes the full ring).
fn ranges_intersect(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 == a.1
        || b.0 == b.1
        || in_open_closed_interval(b.0, b.1, a.1)
        || in_open_closed_interval(a.0, a.1, b.1)
}

/// The ring position a data request is routed by, `None` for protocol and
/// lifecycle messages (which are addressed to a specific peer and never
/// forwarded).
fn data_position(request: &Request, family: &HashFamily) -> Option<u64> {
    match request {
        Request::PutReplica { hash, key, .. } | Request::GetReplica { hash, key, .. } => {
            Some(family.eval(*hash, key))
        }
        Request::Timestamp { key, .. } => Some(family.eval_timestamp(key)),
        _ => None,
    }
}

/// State owned by one peer thread: the storage engine (journaled or
/// ephemeral) holding its replicas, its KTS node whose counter mutations
/// are journaled through the engine, and the forwarding rules installed by
/// committed hand-offs.
struct PeerRuntime {
    engine: StorageEngine,
    kts: KtsNode,
    forwards: Vec<Forwarding>,
}

/// Whether a request may ride in a group-commit batch. Only plain data
/// requests batch; protocol and lifecycle messages are barriers — they are
/// processed alone so their own ack/sync ordering stays explicit.
fn batchable(request: &Request) -> bool {
    matches!(
        request,
        Request::PutReplica { .. } | Request::GetReplica { .. } | Request::Timestamp { .. }
    )
}

/// The peer thread main loop, in **drain-apply-sync-reply** form.
///
/// Each iteration collects a batch: the first request blocks on the mailbox,
/// and — when the engine's fsync policy is `GroupCommit` — every further
/// queued data request is drained (up to `max_batch`, waiting at most
/// `max_delay` for stragglers). The whole batch is then applied and
/// journaled, made durable by **one** covering fsync at the batch boundary,
/// and only then acknowledged: N concurrent writers at `Always`-grade
/// durability share a single fsync instead of paying one each. Under every
/// other policy the batch is a single request and the loop behaves exactly
/// as the classic one-request-at-a-time server (appends sync themselves per
/// policy, the boundary sync is skipped).
///
/// Stops on `Shutdown` (with a final journal flush), on `Crash` (without
/// one), and — once the peer has gracefully departed and only forwards —
/// after a bounded idle period ([`ClusterConfig::forwarder_reap_idle`]),
/// returning the thread and its channel to the system.
fn peer_main(
    id: PeerId,
    mailbox: Receiver<Request>,
    directory: Arc<Directory>,
    engine: StorageEngine,
    kts: KtsNode,
) {
    let batching = engine.options().fsync.batching();
    let mut runtime = PeerRuntime {
        engine,
        kts,
        forwards: Vec::new(),
    };
    // A journal I/O failure (disk full, directory removed, ...) is latched
    // inside the engine; the peer keeps serving its in-memory state —
    // availability over durability — but the degradation must not be
    // silent: report it once.
    let mut poison_reported = false;
    // Set at the commit point of a graceful leave: the peer is a pure
    // forwarder from here on and is reaped once idle.
    let mut departed = false;
    // Sticky: set once this peer departed or retired a forwarding rule
    // whose target mailbox died. From then on a data position no rule
    // covers is re-resolved through the directory before any local
    // fallback — retiring a rule must not silently turn the *next* stale
    // request into local service from a store that handed the range away.
    let mut reroute_uncovered = false;
    // A non-batchable request encountered while draining a batch: handled
    // (alone) on the next iteration, preserving arrival order.
    let mut carry: Option<Request> = None;
    let mut batch: Vec<Request> = Vec::new();
    // Replies owed for the current batch, sent only after the covering sync
    // — durability is acknowledged per op strictly after the fsync that
    // covers it.
    let mut deferred: Vec<(Sender<Reply>, Reply)> = Vec::new();
    'peer: loop {
        let first = match carry.take() {
            Some(request) => request,
            None if departed => match mailbox.recv_timeout(directory.forwarder_reap_idle) {
                Ok(request) => request,
                // Idle past the grace period (or every sender is gone):
                // nothing routed under the old view is still in flight —
                // reap the forwarder. The directory already resolves the
                // range to the successor.
                Err(_) => break 'peer,
            },
            None => match mailbox.recv() {
                Ok(request) => request,
                Err(_) => break 'peer,
            },
        };
        report_journal_poison(id, &runtime.engine, &mut poison_reported);
        match first {
            // Lifecycle messages are exempt from the artificial network
            // delay: shutting a cluster down is not a network exchange, and
            // a crash is by definition instantaneous.
            Request::Shutdown => {
                runtime.engine.sync_to_durable();
                report_journal_poison(id, &runtime.engine, &mut poison_reported);
                break 'peer;
            }
            Request::Crash => break 'peer,
            _ => {}
        }
        batch.clear();
        batch.push(first);
        if let Some((max_batch, max_delay)) = batching {
            if batchable(&batch[0]) {
                // Group-commit drain: this peer is the commit leader for
                // whatever is queued right now. Followers arriving within
                // `max_delay` join the batch; a non-batchable request ends
                // the drain and is carried to the next iteration.
                let deadline = Instant::now() + max_delay;
                while (batch.len() as u64) < max_batch {
                    let now = Instant::now();
                    let next = if max_delay.is_zero() || now >= deadline {
                        mailbox.try_recv().map_err(|_| ())
                    } else {
                        mailbox.recv_timeout(deadline - now).map_err(|_| ())
                    };
                    match next {
                        Ok(request) if batchable(&request) => batch.push(request),
                        Ok(request) => {
                            carry = Some(request);
                            break;
                        }
                        Err(()) => break, // empty / timed out / disconnected
                    }
                }
            }
        }
        for request in batch.drain(..) {
            if !directory.message_delay.is_zero() {
                std::thread::sleep(directory.message_delay);
            }
            // A request for a position this peer handed away is re-sent to
            // the peer that took it over: it was routed here through a
            // directory read that predates the hand-off's commit. Newest
            // rule wins (the same interval can change hands more than
            // once). A rule whose target's mailbox is gone is retired; the
            // request is then re-resolved through the *directory* — if the
            // live responsible is another peer (the takeover peer departed
            // onward and was reaped, so the range lives at its successor
            // now) it is re-sent there, and only when this peer is the live
            // successor again (the takeover peer crashed) is it served
            // locally, which is exactly the failover the ring prescribes.
            let request = match data_position(&request, &directory.family) {
                Some(position) => {
                    let mut pending = Some(request);
                    while let Some(index) = runtime
                        .forwards
                        .iter()
                        .rposition(|rule| rule.covers(position))
                    {
                        match runtime.forwards[index]
                            .target
                            .send(pending.take().expect("present until sent"))
                        {
                            Ok(()) => break,
                            Err(failed) => {
                                runtime.forwards.remove(index);
                                reroute_uncovered = true;
                                pending = Some(failed.0);
                            }
                        }
                    }
                    if departed || reroute_uncovered {
                        if let Some(request) = pending.take() {
                            match directory.responsible_for(position) {
                                Some((responsible, sender)) if responsible != id => {
                                    if let Err(failed) = sender.send(request) {
                                        pending = Some(failed.0);
                                    }
                                }
                                _ => pending = Some(request),
                            }
                        }
                    }
                    match pending {
                        Some(request) => request,
                        None => continue, // forwarded
                    }
                }
                None => request,
            };
            match request {
                Request::PutReplica {
                    hash,
                    key,
                    payload,
                    timestamp,
                    reply,
                } => {
                    let accepted = match runtime.engine.replicas().get(hash, &key) {
                        Some(existing) => timestamp > existing.stamp,
                        None => true,
                    };
                    if accepted {
                        let position = directory.family.eval(hash, &key);
                        let value = ReplicaValue::new(payload, timestamp);
                        runtime
                            .engine
                            .record_replica_put(hash, &key, &value, position);
                    }
                    deferred.push((reply, Reply::PutAck));
                }
                Request::GetReplica { hash, key, reply } => {
                    let stored = runtime
                        .engine
                        .replicas()
                        .get(hash, &key)
                        .map(|replica| (replica.payload.clone(), replica.stamp));
                    deferred.push((reply, Reply::Replica(stored)));
                }
                Request::Timestamp {
                    key,
                    generate,
                    observation_hint,
                    reply,
                } => {
                    let answer = if runtime.kts.has_counter(&key) {
                        let ts = if generate {
                            runtime
                                .kts
                                .gen_ts_with(
                                    &key,
                                    IndirectObservation::nothing,
                                    &mut runtime.engine,
                                )
                                .timestamp
                        } else {
                            runtime
                                .kts
                                .last_ts_with(
                                    &key,
                                    LastTsInitPolicy::ObservedMax,
                                    IndirectObservation::nothing,
                                    &mut runtime.engine,
                                )
                                .timestamp
                        };
                        Reply::Timestamp(ts)
                    } else {
                        match observation_hint {
                            None => Reply::NeedsInitialization,
                            Some(observed) => {
                                let observation = if observed.is_zero() {
                                    IndirectObservation::nothing()
                                } else {
                                    IndirectObservation::observed(observed)
                                };
                                let ts = if generate {
                                    runtime
                                        .kts
                                        .gen_ts_with(&key, || observation, &mut runtime.engine)
                                        .timestamp
                                } else {
                                    runtime
                                        .kts
                                        .last_ts_with(
                                            &key,
                                            LastTsInitPolicy::ObservedMax,
                                            || observation,
                                            &mut runtime.engine,
                                        )
                                        .timestamp
                                };
                                Reply::Timestamp(ts)
                            }
                        }
                    };
                    deferred.push((reply, answer));
                }
                Request::HandoffRange {
                    start,
                    end,
                    target_id,
                    target,
                    kind,
                    fault,
                    reply,
                } => {
                    // Phase `Exported`: copy the replicas in range, drain
                    // the counters of the keys timestamped there. The
                    // removals are synced before the bundle ships — under a
                    // deferred-sync policy an unsynced removal could be
                    // resurrected by a crash *after* the counters moved,
                    // breaking Rule 3's "at most one live counter" durably.
                    let bundle = export_handoff(
                        &mut runtime.engine,
                        &mut runtime.kts,
                        &directory.family,
                        start,
                        end,
                    );
                    runtime.engine.sync_to_durable();
                    let replicas_moved = bundle.replicas.len();
                    let counters_moved = bundle.counters.len();
                    if fault == Some(HandoffFault::CrashAfterExport) {
                        // Fail-stop mid-transfer: the bundle is lost in
                        // flight. Recovery rolls back — the journal still
                        // holds every replica, and the drained counters
                        // re-initialize indirectly.
                        directory.mark_dead(id);
                        break 'peer;
                    }
                    // Phase `Installed`: ship the bundle and wait for the
                    // target to journal it.
                    let (ack_tx, ack_rx) = bounded(1);
                    let sent = target.send(Request::InstallState {
                        start,
                        end,
                        bundle,
                        reply: ack_tx,
                    });
                    let acked = sent.is_ok()
                        && matches!(
                            ack_rx.recv_timeout(INSTALL_ACK_TIMEOUT),
                            Ok(Reply::InstallAck { .. })
                        );
                    if !acked {
                        // The target died before journaling the bundle:
                        // abort without committing. This peer keeps its
                        // replicas (the export only copied them) and keeps
                        // serving; the moved counters are gone, which only
                        // costs indirect re-inits.
                        let _ = reply.send(Reply::HandoffFailed {
                            reason: "hand-off target never acknowledged the install".to_string(),
                        });
                        continue;
                    }
                    if fault == Some(HandoffFault::CrashAfterInstall) {
                        // Fail-stop between the target's ack and the commit:
                        // the target's journal holds the state, so a retried
                        // join/leave completes the transfer.
                        directory.mark_dead(id);
                        break 'peer;
                    }
                    // Commit point — all three steps inside one serially
                    // processed request, so no client request interleaves:
                    // flip the directory, prune the moved range from the
                    // journal, start forwarding.
                    match kind {
                        HandoffKind::Join => directory.revive(target_id, target.clone()),
                        HandoffKind::Leave => directory.mark_dead(id),
                    }
                    commit_handoff(&mut runtime.engine, start, end);
                    runtime.forwards.push(Forwarding {
                        start,
                        end,
                        everything: kind == HandoffKind::Leave,
                        target,
                    });
                    // The commit record must be durable before the
                    // coordinator learns of the flip (a crash right after
                    // the reply must not replay the pruned range back in);
                    // for a departing peer this is also its final flush.
                    runtime.engine.sync_to_durable();
                    if kind == HandoffKind::Leave {
                        departed = true;
                    }
                    let _ = reply.send(Reply::HandoffComplete {
                        replicas_moved,
                        counters_moved,
                    });
                }
                Request::InstallState {
                    start,
                    end,
                    bundle,
                    reply,
                } => {
                    let report = install_handoff(&mut runtime.engine, &mut runtime.kts, bundle);
                    // This peer owns (start, end] again: retire any
                    // forwarding rule that overlaps it, or a former owner
                    // and its round-tripped successor would bounce requests
                    // forever.
                    runtime
                        .forwards
                        .retain(|rule| !ranges_intersect((rule.start, rule.end), (start, end)));
                    // The bundle must be durable before the ack: the source
                    // treats the ack as licence to prune its own copy at
                    // commit, so an unsynced install journal would be the
                    // only holder of the moved state.
                    runtime.engine.sync_to_durable();
                    let _ = reply.send(Reply::InstallAck {
                        replicas_installed: report.replicas_installed,
                        counters_received: report.counters_received,
                    });
                }
                Request::Shutdown | Request::Crash => {
                    unreachable!("lifecycle requests never enter a batch")
                }
            }
        }
        // The batch boundary: one covering fsync for everything the batch
        // journaled (free if the batch was read-only), then the
        // acknowledgements.
        if batching.is_some() {
            runtime.engine.sync_to_durable();
        }
        for (reply, answer) in deferred.drain(..) {
            let _ = reply.send(answer);
        }
    }
}
