//! The cluster: peer threads, the shared membership directory and lifecycle
//! management.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdht_core::kts::{IndirectObservation, KtsNode};
use rdht_core::{LastTsInitPolicy, Timestamp};
use rdht_hashing::{HashFamily, HashId, Key};

use crate::client::ClusterClient;
use crate::message::{Reply, Request};

/// Identifier of a peer on the cluster ring (the same 64-bit space keys are
/// hashed into).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u64);

/// Tunables of a cluster deployment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of peer threads.
    pub num_peers: usize,
    /// Number of replication hash functions `|Hr|`.
    pub num_replicas: usize,
    /// Seed for peer identifiers and the hash family.
    pub seed: u64,
    /// Artificial delay injected before a peer processes each message,
    /// modelling network latency. Zero by default so tests run fast.
    pub message_delay: Duration,
}

impl ClusterConfig {
    /// A configuration with `num_peers` peers, `num_replicas` replication
    /// functions and no artificial delay.
    pub fn new(num_peers: usize, num_replicas: usize, seed: u64) -> Self {
        ClusterConfig {
            num_peers,
            num_replicas,
            seed,
            message_delay: Duration::ZERO,
        }
    }
}

/// Shared, read-mostly view of cluster membership: which peers exist, which
/// are alive, and how to reach them.
pub(crate) struct Directory {
    pub(crate) family: HashFamily,
    /// Peer ring: id -> (mailbox, alive flag).
    pub(crate) peers: RwLock<BTreeMap<PeerId, (Sender<Request>, bool)>>,
    pub(crate) message_delay: Duration,
}

impl Directory {
    /// The peer currently responsible for a position: the first *alive* peer
    /// clockwise from it (successor-on-the-ring responsibility).
    pub(crate) fn responsible_for(&self, position: u64) -> Option<(PeerId, Sender<Request>)> {
        let peers = self.peers.read();
        peers
            .range(PeerId(position)..)
            .chain(peers.iter())
            .find(|(_, (_, alive))| *alive)
            .map(|(id, (sender, _))| (*id, sender.clone()))
    }

    /// Marks a peer as dead (its mailbox stays but is never selected again).
    pub(crate) fn mark_dead(&self, peer: PeerId) {
        if let Some(entry) = self.peers.write().get_mut(&peer) {
            entry.1 = false;
        }
    }

    /// Number of live peers.
    pub(crate) fn live_count(&self) -> usize {
        self.peers
            .read()
            .values()
            .filter(|(_, alive)| *alive)
            .count()
    }
}

/// A running cluster of peer threads.
pub struct Cluster {
    directory: Arc<Directory>,
    handles: Vec<(PeerId, JoinHandle<()>)>,
    config: ClusterConfig,
}

impl Cluster {
    /// Spawns a cluster with `num_peers` peers and `num_replicas` replication
    /// hash functions, with no artificial message delay.
    pub fn spawn(num_peers: usize, num_replicas: usize, seed: u64) -> Self {
        Cluster::spawn_with(ClusterConfig::new(num_peers, num_replicas, seed))
    }

    /// Spawns a cluster from an explicit configuration.
    pub fn spawn_with(config: ClusterConfig) -> Self {
        assert!(config.num_peers > 0, "a cluster needs at least one peer");
        let family = HashFamily::new(config.num_replicas, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc1u64);
        let mut ring: BTreeMap<PeerId, (Sender<Request>, bool)> = BTreeMap::new();
        let mut receivers: Vec<(PeerId, Receiver<Request>)> = Vec::new();
        while ring.len() < config.num_peers {
            let id = PeerId(rng.gen());
            if ring.contains_key(&id) {
                continue;
            }
            let (sender, receiver) = unbounded();
            ring.insert(id, (sender, true));
            receivers.push((id, receiver));
        }
        let directory = Arc::new(Directory {
            family,
            peers: RwLock::new(ring),
            message_delay: config.message_delay,
        });
        let handles = receivers
            .into_iter()
            .map(|(id, receiver)| {
                let directory = Arc::clone(&directory);
                let handle = std::thread::spawn(move || peer_main(id, receiver, directory));
                (id, handle)
            })
            .collect();
        Cluster {
            directory,
            handles,
            config,
        }
    }

    /// The configuration the cluster was spawned with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Creates a client handle. Clients are cheap; create one per thread that
    /// wants to issue operations.
    pub fn client(&self) -> ClusterClient {
        ClusterClient::new(Arc::clone(&self.directory))
    }

    /// All peer identifiers, in ring order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.directory.peers.read().keys().copied().collect()
    }

    /// Number of live peers.
    pub fn live_peers(&self) -> usize {
        self.directory.live_count()
    }

    /// The peer currently responsible for timestamping `key` — useful for
    /// tests that want to crash exactly that peer.
    pub fn timestamp_responsible(&self, key: &Key) -> Option<PeerId> {
        let position = self.directory.family.eval_timestamp(key);
        self.directory.responsible_for(position).map(|(id, _)| id)
    }

    /// The peer currently responsible for `key` under replication function
    /// `hash`.
    pub fn replica_responsible(&self, hash: HashId, key: &Key) -> Option<PeerId> {
        let position = self.directory.family.eval(hash, key);
        self.directory.responsible_for(position).map(|(id, _)| id)
    }

    /// Crashes a peer: it is marked dead in the directory (so it stops being
    /// responsible for anything) and its thread is told to stop. Its stored
    /// replicas and counters are lost, exactly like a fail-stop failure.
    pub fn crash_peer(&self, peer: PeerId) {
        let sender = {
            let peers = self.directory.peers.read();
            peers.get(&peer).map(|(sender, _)| sender.clone())
        };
        self.directory.mark_dead(peer);
        if let Some(sender) = sender {
            let _ = sender.send(Request::Shutdown);
        }
    }

    /// Stops every peer thread and waits for them to finish.
    pub fn shutdown(self) {
        {
            let peers = self.directory.peers.read();
            for (sender, _) in peers.values() {
                let _ = sender.send(Request::Shutdown);
            }
        }
        for (_, handle) in self.handles {
            let _ = handle.join();
        }
    }
}

/// State owned by one peer thread.
struct PeerRuntime {
    store: BTreeMap<(HashId, Key), (Vec<u8>, Timestamp)>,
    kts: KtsNode,
}

/// The peer thread main loop: drain the mailbox, answer requests, stop on
/// `Shutdown`.
fn peer_main(_id: PeerId, mailbox: Receiver<Request>, directory: Arc<Directory>) {
    let mut runtime = PeerRuntime {
        store: BTreeMap::new(),
        kts: KtsNode::new(false),
    };
    while let Ok(request) = mailbox.recv() {
        if !directory.message_delay.is_zero() {
            std::thread::sleep(directory.message_delay);
        }
        match request {
            Request::PutReplica {
                hash,
                key,
                payload,
                timestamp,
                reply,
            } => {
                let entry = runtime.store.entry((hash, key));
                match entry {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert((payload, timestamp));
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        if timestamp > o.get().1 {
                            o.insert((payload, timestamp));
                        }
                    }
                }
                let _ = reply.send(Reply::PutAck);
            }
            Request::GetReplica { hash, key, reply } => {
                let stored = runtime.store.get(&(hash, key)).cloned();
                let _ = reply.send(Reply::Replica(stored));
            }
            Request::Timestamp {
                key,
                generate,
                observation_hint,
                reply,
            } => {
                let answer = if runtime.kts.has_counter(&key) {
                    let ts = if generate {
                        runtime
                            .kts
                            .gen_ts(&key, IndirectObservation::nothing)
                            .timestamp
                    } else {
                        runtime
                            .kts
                            .last_ts(
                                &key,
                                LastTsInitPolicy::ObservedMax,
                                IndirectObservation::nothing,
                            )
                            .timestamp
                    };
                    Reply::Timestamp(ts)
                } else {
                    match observation_hint {
                        None => Reply::NeedsInitialization,
                        Some(observed) => {
                            let observation = if observed.is_zero() {
                                IndirectObservation::nothing()
                            } else {
                                IndirectObservation::observed(observed)
                            };
                            let ts = if generate {
                                runtime.kts.gen_ts(&key, || observation).timestamp
                            } else {
                                runtime
                                    .kts
                                    .last_ts(&key, LastTsInitPolicy::ObservedMax, || observation)
                                    .timestamp
                            };
                            Reply::Timestamp(ts)
                        }
                    }
                };
                let _ = reply.send(answer);
            }
            Request::Shutdown => break,
        }
    }
}
