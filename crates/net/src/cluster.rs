//! The cluster: peer threads, the shared membership directory and lifecycle
//! management — including real crash/restart recovery when peers are backed
//! by `rdht-storage` directories.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdht_core::durability::DurableState;
use rdht_core::kts::{IndirectObservation, KtsNode};
use rdht_core::{LastTsInitPolicy, ReplicaValue};
use rdht_hashing::{HashFamily, HashId, Key};
use rdht_storage::{StorageEngine, StorageOptions};

use crate::client::ClusterClient;
use crate::message::{Reply, Request};

/// Identifier of a peer on the cluster ring (the same 64-bit space keys are
/// hashed into).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u64);

/// Where (and how) a cluster persists its peers' state.
#[derive(Clone, Debug)]
pub struct ClusterStorage {
    /// Root directory; each peer owns the subdirectory
    /// `peer-<id:016x>` underneath it.
    pub root: PathBuf,
    /// Engine tuning (fsync policy, snapshot cadence) shared by every peer.
    pub options: StorageOptions,
}

impl ClusterStorage {
    /// Storage under `root` with default engine options (fsync `Always`).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ClusterStorage {
            root: root.into(),
            options: StorageOptions::default(),
        }
    }

    /// Storage under `root` with explicit engine options.
    pub fn with_options(root: impl Into<PathBuf>, options: StorageOptions) -> Self {
        ClusterStorage {
            root: root.into(),
            options,
        }
    }

    /// The on-disk directory of one peer.
    pub fn peer_dir(&self, peer: PeerId) -> PathBuf {
        self.root.join(format!("peer-{:016x}", peer.0))
    }
}

/// Tunables of a cluster deployment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of peer threads.
    pub num_peers: usize,
    /// Number of replication hash functions `|Hr|`.
    pub num_replicas: usize,
    /// Seed for peer identifiers and the hash family.
    pub seed: u64,
    /// Artificial delay injected before a peer processes each *data* message,
    /// modelling network latency. Zero by default so tests run fast.
    /// Lifecycle messages (`Shutdown`, `Crash`) are exempt: tearing a
    /// cluster down is a local operation, not a network exchange, so
    /// `Cluster::shutdown` stays prompt regardless of the modelled latency.
    pub message_delay: Duration,
    /// When set, every peer journals its replicas and counters to its own
    /// directory under `storage.root`, and [`Cluster::restart_peer`] can
    /// bring a crashed peer back with its durable state.
    pub storage: Option<ClusterStorage>,
}

impl ClusterConfig {
    /// A configuration with `num_peers` peers, `num_replicas` replication
    /// functions, no artificial delay and no durability.
    pub fn new(num_peers: usize, num_replicas: usize, seed: u64) -> Self {
        ClusterConfig {
            num_peers,
            num_replicas,
            seed,
            message_delay: Duration::ZERO,
            storage: None,
        }
    }

    /// Returns a copy with peer-state durability under `storage`.
    pub fn with_storage(mut self, storage: ClusterStorage) -> Self {
        self.storage = Some(storage);
        self
    }
}

/// Shared, read-mostly view of cluster membership: which peers exist, which
/// are alive, and how to reach them.
pub(crate) struct Directory {
    pub(crate) family: HashFamily,
    /// Peer ring: id -> (mailbox, alive flag).
    pub(crate) peers: RwLock<BTreeMap<PeerId, (Sender<Request>, bool)>>,
    pub(crate) message_delay: Duration,
}

impl Directory {
    /// The peer currently responsible for a position: the first *alive* peer
    /// clockwise from it (successor-on-the-ring responsibility).
    pub(crate) fn responsible_for(&self, position: u64) -> Option<(PeerId, Sender<Request>)> {
        let peers = self.peers.read();
        peers
            .range(PeerId(position)..)
            .chain(peers.iter())
            .find(|(_, (_, alive))| *alive)
            .map(|(id, (sender, _))| (*id, sender.clone()))
    }

    /// Marks a peer as dead (its mailbox stays but is never selected again).
    pub(crate) fn mark_dead(&self, peer: PeerId) {
        if let Some(entry) = self.peers.write().get_mut(&peer) {
            entry.1 = false;
        }
    }

    /// Re-registers a restarted peer under a fresh mailbox and marks it
    /// alive again.
    pub(crate) fn revive(&self, peer: PeerId, sender: Sender<Request>) {
        self.peers.write().insert(peer, (sender, true));
    }

    /// Number of live peers.
    pub(crate) fn live_count(&self) -> usize {
        self.peers
            .read()
            .values()
            .filter(|(_, alive)| *alive)
            .count()
    }
}

/// What [`Cluster::restart_peer`] recovered from a peer's storage directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Replicas rebuilt from the snapshot + WAL and served again.
    pub recovered_replicas: usize,
    /// Durable counter images found on disk. Per the paper's Rule 1 these
    /// are **not** resurrected into the live Valid Counter Set (another peer
    /// may have generated newer timestamps while this one was down); the
    /// live counters re-initialize indirectly from the replicas.
    pub recovered_counters: usize,
    /// Storage generation (snapshot/WAL pair) the state was recovered from.
    pub generation: u64,
    /// Whether recovery had to discard a torn WAL tail.
    pub torn_tail: bool,
}

/// A running cluster of peer threads.
pub struct Cluster {
    directory: Arc<Directory>,
    handles: BTreeMap<PeerId, JoinHandle<()>>,
    config: ClusterConfig,
}

impl Cluster {
    /// Spawns a cluster with `num_peers` peers and `num_replicas` replication
    /// hash functions, with no artificial message delay and no durability.
    pub fn spawn(num_peers: usize, num_replicas: usize, seed: u64) -> Self {
        Cluster::spawn_with(ClusterConfig::new(num_peers, num_replicas, seed))
    }

    /// Spawns a cluster from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `num_peers` is zero, or when durability is configured and
    /// a peer's storage directory cannot be opened.
    pub fn spawn_with(config: ClusterConfig) -> Self {
        assert!(config.num_peers > 0, "a cluster needs at least one peer");
        let family = HashFamily::new(config.num_replicas, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc1u64);
        let mut ring: BTreeMap<PeerId, (Sender<Request>, bool)> = BTreeMap::new();
        let mut receivers: Vec<(PeerId, Receiver<Request>)> = Vec::new();
        while ring.len() < config.num_peers {
            let id = PeerId(rng.gen());
            if ring.contains_key(&id) {
                continue;
            }
            let (sender, receiver) = unbounded();
            ring.insert(id, (sender, true));
            receivers.push((id, receiver));
        }
        let directory = Arc::new(Directory {
            family,
            peers: RwLock::new(ring),
            message_delay: config.message_delay,
        });
        let handles = receivers
            .into_iter()
            .map(|(id, receiver)| {
                let engine = open_engine(&config.storage, id);
                let directory = Arc::clone(&directory);
                let handle = std::thread::spawn(move || peer_main(id, receiver, directory, engine));
                (id, handle)
            })
            .collect();
        Cluster {
            directory,
            handles,
            config,
        }
    }

    /// The configuration the cluster was spawned with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Creates a client handle. Clients are cheap; create one per thread that
    /// wants to issue operations.
    pub fn client(&self) -> ClusterClient {
        ClusterClient::new(Arc::clone(&self.directory))
    }

    /// All peer identifiers, in ring order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.directory.peers.read().keys().copied().collect()
    }

    /// Number of live peers.
    pub fn live_peers(&self) -> usize {
        self.directory.live_count()
    }

    /// The peer currently responsible for timestamping `key` — useful for
    /// tests that want to crash exactly that peer.
    pub fn timestamp_responsible(&self, key: &Key) -> Option<PeerId> {
        let position = self.directory.family.eval_timestamp(key);
        self.directory.responsible_for(position).map(|(id, _)| id)
    }

    /// The peer currently responsible for `key` under replication function
    /// `hash`.
    pub fn replica_responsible(&self, hash: HashId, key: &Key) -> Option<PeerId> {
        let position = self.directory.family.eval(hash, key);
        self.directory.responsible_for(position).map(|(id, _)| id)
    }

    /// Crashes a peer: it is marked dead in the directory (so it stops being
    /// responsible for anything) and its thread stops without any final
    /// flush — a fail-stop failure. Everything in the peer's memory (its
    /// live counters, and its replicas when the cluster has no storage) is
    /// lost; what its journal already holds survives on disk and
    /// [`Cluster::restart_peer`] can recover it.
    pub fn crash_peer(&self, peer: PeerId) {
        let sender = {
            let peers = self.directory.peers.read();
            peers.get(&peer).map(|(sender, _)| sender.clone())
        };
        self.directory.mark_dead(peer);
        if let Some(sender) = sender {
            let _ = sender.send(Request::Crash);
        }
    }

    /// Restarts a crashed peer from its on-disk directory: joins the dead
    /// thread, recovers the storage generation (snapshot + WAL, tolerating a
    /// torn tail), re-registers the peer alive in the directory and respawns
    /// its thread over the recovered replicas.
    ///
    /// The live Valid Counter Set starts **empty** (Rule 1) — the durable
    /// counter images are reported in the [`RestartReport`] and cleared from
    /// the journal, and the first timestamp request for a key re-initializes
    /// its counter indirectly from the replicas (Section 4.2.2).
    ///
    /// On a cluster without storage the peer simply rejoins empty. Returns
    /// `None` when the peer id is unknown.
    pub fn restart_peer(&mut self, peer: PeerId) -> Option<RestartReport> {
        if !self.directory.peers.read().contains_key(&peer) {
            return None;
        }
        // Make sure the old thread is gone before touching its directory:
        // two threads must never share a WAL.
        self.crash_peer(peer);
        if let Some(handle) = self.handles.remove(&peer) {
            let _ = handle.join();
        }

        let mut engine = open_engine(&self.config.storage, peer);
        let report = RestartReport {
            recovered_replicas: engine.replicas().len(),
            recovered_counters: engine.counters().len(),
            generation: engine.generation(),
            torn_tail: engine.stats().recovered_torn_tail,
        };
        // Rule 1, durably: the rejoined peer's VCS is empty, so its durable
        // image must be too (the recovered values may be stale — another
        // peer may have generated newer timestamps while this one was down).
        if report.recovered_counters > 0 {
            engine.record_counters_cleared();
        }

        let (sender, receiver) = unbounded();
        let directory = Arc::clone(&self.directory);
        let handle = std::thread::spawn(move || peer_main(peer, receiver, directory, engine));
        self.directory.revive(peer, sender);
        self.handles.insert(peer, handle);
        Some(report)
    }

    /// Stops every peer thread (flushing their journals) and waits for them
    /// to finish.
    pub fn shutdown(self) {
        {
            let peers = self.directory.peers.read();
            for (sender, _) in peers.values() {
                let _ = sender.send(Request::Shutdown);
            }
        }
        for (_, handle) in self.handles {
            let _ = handle.join();
        }
    }
}

/// Opens the storage engine backing one peer: a real journaled engine when
/// the cluster is configured with storage, an ephemeral in-memory one
/// otherwise.
fn open_engine(storage: &Option<ClusterStorage>, peer: PeerId) -> StorageEngine {
    match storage {
        Some(storage) => {
            let dir = storage.peer_dir(peer);
            StorageEngine::open(&dir, storage.options)
                .unwrap_or_else(|error| panic!("cannot open peer storage at {dir:?}: {error}"))
        }
        None => StorageEngine::ephemeral(),
    }
}

/// Reports a latched journal failure to stderr, once per peer lifetime.
fn report_journal_poison(id: PeerId, engine: &StorageEngine, reported: &mut bool) {
    if *reported {
        return;
    }
    if let Some(error) = engine.poison_error() {
        eprintln!(
            "rdht-net peer {:016x}: journal failed ({error}); continuing \
             WITHOUT durability — state written from here on will not \
             survive a crash",
            id.0
        );
        *reported = true;
    }
}

/// State owned by one peer thread: the storage engine (journaled or
/// ephemeral) holding its replicas, and its KTS node whose counter mutations
/// are journaled through the engine.
struct PeerRuntime {
    engine: StorageEngine,
    kts: KtsNode,
}

/// The peer thread main loop: drain the mailbox, answer requests, stop on
/// `Shutdown` (with a final journal flush) or `Crash` (without one).
fn peer_main(
    id: PeerId,
    mailbox: Receiver<Request>,
    directory: Arc<Directory>,
    engine: StorageEngine,
) {
    let mut runtime = PeerRuntime {
        engine,
        kts: KtsNode::new(false),
    };
    // A journal I/O failure (disk full, directory removed, ...) is latched
    // inside the engine; the peer keeps serving its in-memory state —
    // availability over durability — but the degradation must not be
    // silent: report it once.
    let mut poison_reported = false;
    while let Ok(request) = mailbox.recv() {
        report_journal_poison(id, &runtime.engine, &mut poison_reported);
        match request {
            // Lifecycle messages are exempt from the artificial network
            // delay: shutting a cluster down is not a network exchange, and
            // a crash is by definition instantaneous.
            Request::Shutdown => {
                runtime.engine.sync_to_durable();
                report_journal_poison(id, &runtime.engine, &mut poison_reported);
                break;
            }
            Request::Crash => break,
            _ => {}
        }
        if !directory.message_delay.is_zero() {
            std::thread::sleep(directory.message_delay);
        }
        match request {
            Request::PutReplica {
                hash,
                key,
                payload,
                timestamp,
                reply,
            } => {
                let accepted = match runtime.engine.replicas().get(hash, &key) {
                    Some(existing) => timestamp > existing.stamp,
                    None => true,
                };
                if accepted {
                    let position = directory.family.eval(hash, &key);
                    let value = ReplicaValue::new(payload, timestamp);
                    runtime
                        .engine
                        .record_replica_put(hash, &key, &value, position);
                }
                let _ = reply.send(Reply::PutAck);
            }
            Request::GetReplica { hash, key, reply } => {
                let stored = runtime
                    .engine
                    .replicas()
                    .get(hash, &key)
                    .map(|replica| (replica.payload.clone(), replica.stamp));
                let _ = reply.send(Reply::Replica(stored));
            }
            Request::Timestamp {
                key,
                generate,
                observation_hint,
                reply,
            } => {
                let answer = if runtime.kts.has_counter(&key) {
                    let ts = if generate {
                        runtime
                            .kts
                            .gen_ts_with(&key, IndirectObservation::nothing, &mut runtime.engine)
                            .timestamp
                    } else {
                        runtime
                            .kts
                            .last_ts_with(
                                &key,
                                LastTsInitPolicy::ObservedMax,
                                IndirectObservation::nothing,
                                &mut runtime.engine,
                            )
                            .timestamp
                    };
                    Reply::Timestamp(ts)
                } else {
                    match observation_hint {
                        None => Reply::NeedsInitialization,
                        Some(observed) => {
                            let observation = if observed.is_zero() {
                                IndirectObservation::nothing()
                            } else {
                                IndirectObservation::observed(observed)
                            };
                            let ts = if generate {
                                runtime
                                    .kts
                                    .gen_ts_with(&key, || observation, &mut runtime.engine)
                                    .timestamp
                            } else {
                                runtime
                                    .kts
                                    .last_ts_with(
                                        &key,
                                        LastTsInitPolicy::ObservedMax,
                                        || observation,
                                        &mut runtime.engine,
                                    )
                                    .timestamp
                            };
                            Reply::Timestamp(ts)
                        }
                    }
                };
                let _ = reply.send(answer);
            }
            Request::Shutdown | Request::Crash => unreachable!("handled above"),
        }
    }
}
