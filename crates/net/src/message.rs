//! Protocol messages exchanged between clients and peers.
//!
//! Since the transport redesign these are **pure data**: a request names
//! peers by [`PeerId`] and carries no channels, so the same value can travel
//! over an in-process mailbox or be encoded onto a TCP stream by the wire
//! codec ([`crate::wire`]). The reply path travels *next to* the request as
//! a [`crate::ReplySink`] (in-process) or as the request id of the framed
//! envelope (on the wire).

use rdht_core::Timestamp;
use rdht_hashing::{HashId, Key};
use rdht_membership::HandoffBundle;

use crate::cluster::PeerId;

/// Identity of one logical mutating operation, carried by the request (and
/// every retry of it) so the receiving peer can deduplicate: a retried or
/// duplicated mutation is applied once and re-acknowledged from a cached
/// reply. Clients and coordinating peers each own a `client` namespace and
/// allocate `seq` monotonically; a *new* logical operation always gets a
/// fresh `seq`, while every re-send of the *same* operation repeats it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpId {
    /// The issuing actor (a client handle, or a peer driving a hand-off).
    pub client: u64,
    /// Sequence number of the operation within that actor.
    pub seq: u64,
}

/// Which membership operation a [`Request::HandoffRange`] implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandoffKind {
    /// A join: the receiving peer (the joiner's successor) splits its range,
    /// ships the counter-clockwise half to the joiner, and registers the
    /// joiner in the directory at the commit point.
    Join,
    /// A graceful leave: the receiving peer (the one departing) ships its
    /// whole range to its successor, unregisters itself at the commit point
    /// and lingers as a forwarder until the cluster shuts down.
    Leave,
}

/// Fault injection for crash-recovery tests: fail-stop the peer driving a
/// hand-off at a chosen phase boundary, exactly as if it crashed there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandoffFault {
    /// Crash after exporting the bundle (counters durably drained, replicas
    /// still in place, nothing shipped): the transfer must roll back.
    CrashAfterExport,
    /// Crash after the target acknowledged the install but before the
    /// commit: the target's journal already holds the state and the
    /// transfer must complete on retry.
    CrashAfterInstall,
}

/// A request sent to a peer. Every in-flight request has an associated reply
/// path — a [`crate::ReplySink`] delivered alongside it by the transport.
///
/// Data requests (`PutReplica`, `PutReplicas`, `GetReplica`, `Timestamp`)
/// may be drained into a group-commit batch when the peer's storage runs
/// `FsyncPolicy::GroupCommit`: the peer applies and journals the whole
/// batch, issues one covering fsync, and only then sends the replies — so
/// an acknowledgement always means "durable", regardless of how many
/// requests shared the fsync. Protocol and lifecycle messages never batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Store a stamped replica; the peer keeps it only if the stamp is newer
    /// than what it already holds (UMS `put_h` semantics).
    PutReplica {
        /// Dedup identity of the logical put; `None` for fire-and-forget
        /// senders that never retry.
        op: Option<OpId>,
        /// Replication hash function the replica is stored under.
        hash: HashId,
        /// The application key.
        key: Key,
        /// Replica payload.
        payload: Vec<u8>,
        /// KTS timestamp of the payload.
        timestamp: Timestamp,
    },
    /// Store the same stamped payload under several replication hash
    /// functions in **one** request — the batched fan-out half of a UMS
    /// insert. The client groups the `|Hr|` replica puts of an insert by
    /// responsible peer and ships one `PutReplicas` per peer; the receiving
    /// peer answers a single [`Reply::PutsAck`] once every constituent put
    /// was applied (or forwarded and acknowledged by the peer now
    /// responsible for it).
    PutReplicas {
        /// Dedup identity of the logical batched put. The constituent
        /// per-hash puts inherit it, each disambiguated by its hash — so a
        /// retried batch that is *regrouped* under a changed directory view
        /// still deduplicates per constituent.
        op: Option<OpId>,
        /// The replication hash functions to store the payload under.
        hashes: Vec<HashId>,
        /// The application key.
        key: Key,
        /// Replica payload (shared by every constituent put).
        payload: Vec<u8>,
        /// KTS timestamp of the payload.
        timestamp: Timestamp,
    },
    /// Read the replica stored under `(hash, key)`.
    GetReplica {
        /// Replication hash function to read under.
        hash: HashId,
        /// The application key.
        key: Key,
    },
    /// KTS `gen_ts` / `last_ts` request. If the peer has no valid counter for
    /// the key it answers [`Reply::NeedsInitialization`] and the client
    /// gathers the indirect observation before retrying with
    /// `observation_hint`.
    Timestamp {
        /// Dedup identity of a `gen_ts` (set only when `generate` — a
        /// counter increment must not be re-applied on a retry; the cached
        /// reply returns the *same* timestamp instead). `last_ts` is a pure
        /// read and carries `None`.
        op: Option<OpId>,
        /// The application key.
        key: Key,
        /// True for `gen_ts`, false for `last_ts`.
        generate: bool,
        /// Largest timestamp the client observed among the key's replicas
        /// (the indirect initialization of Section 4.2.2), if it already
        /// gathered one.
        observation_hint: Option<Timestamp>,
    },
    /// Drive a membership hand-off: the receiving peer exports the replicas
    /// and counters of the ring interval `(start, end]`, ships them to
    /// `target_id` with [`Request::InstallState`], waits for the ack, and
    /// then commits — flipping the shared directory and pruning its own
    /// journal in one serially-processed step, so traffic never observes a
    /// half-moved range. The target is addressed by peer id and resolved
    /// through the transport (it may not be in the directory yet: a joiner
    /// is registered only at the commit point).
    HandoffRange {
        /// Dedup identity of the hand-off, repeated by every coordinator
        /// re-send: a source that already committed re-acknowledges from its
        /// cached [`Reply::HandoffComplete`] instead of driving a second
        /// transfer, which is what makes bounded coordinator deadlines safe.
        op: Option<OpId>,
        /// Exclusive start of the moved interval.
        start: u64,
        /// Inclusive end of the moved interval.
        end: u64,
        /// Ring identifier of the peer receiving the state.
        target_id: PeerId,
        /// Join or graceful leave.
        kind: HandoffKind,
        /// Fault injection for crash-recovery tests; `None` in production.
        fault: Option<HandoffFault>,
    },
    /// Install the state bundle of an in-flight hand-off (sent by the
    /// exporting peer to the target). Every accepted replica and counter is
    /// journaled **and fsynced** at the target before the ack (under any
    /// fsync policy, including deferred-sync group commit), which is what
    /// makes a crash from this point on completable: the source treats the
    /// ack as licence to prune its own copy at commit.
    InstallState {
        /// Dedup identity of this install attempt. The source re-sends the
        /// bundle under the *same* id when an install ack is lost; the
        /// target must not re-apply an old bundle after interleaved counter
        /// activity, so the cached [`Reply::InstallAck`] answers instead.
        op: Option<OpId>,
        /// Exclusive start of the interval the bundle covers.
        start: u64,
        /// Inclusive end of the interval the bundle covers.
        end: u64,
        /// Replicas and counters moving in.
        bundle: HandoffBundle,
    },
    /// Scrape the peer's metrics registry: the peer answers
    /// [`Reply::Metrics`] carrying its full Prometheus text exposition.
    /// Never batched (a scrape must not wait out a group-commit drain) and
    /// never forwarded (it is addressed to a specific peer, not a ring
    /// position). A peer running without a registry answers
    /// [`Reply::Error`].
    Metrics,
    /// Ask the peer for its slowest recently-completed requests: the peer
    /// answers [`Reply::SlowRequests`] with up to `k` request trees from its
    /// span-log ring, each broken down into named phases (queue-wait, apply,
    /// fsync, ...). Like [`Request::Metrics`] it is addressed to a specific
    /// peer, never batched, never forwarded, and — together with the other
    /// introspection and lifecycle messages — bypasses the tracing sampler
    /// itself, so scraping the slow log never pollutes it.
    SlowRequests {
        /// Maximum number of request trees to return.
        k: u32,
    },
    /// Ask the peer to stop gracefully: it flushes its journal to stable
    /// storage before exiting. No reply is sent.
    Shutdown,
    /// Fail-stop the peer: the thread exits immediately, without any final
    /// journal flush — simulating a crash. Only what the fsync policy
    /// already pushed to disk survives. No reply is sent.
    Crash,
}

/// A peer's answer to a [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Write acknowledged (whether or not it overwrote existing state).
    PutAck,
    /// All constituent puts of a [`Request::PutReplicas`] ran to completion.
    PutsAck {
        /// Puts applied (locally or by the peer they were forwarded to).
        written: u32,
        /// Puts that could not be delivered to any responsible peer.
        failed: u32,
    },
    /// Result of a read: the stored payload and timestamp, if any.
    Replica(Option<(Vec<u8>, Timestamp)>),
    /// A timestamp, from `gen_ts` or `last_ts`.
    Timestamp(Timestamp),
    /// The peer has no valid counter for the key and needs the client to run
    /// the indirect initialization first.
    NeedsInitialization,
    /// A hand-off committed: the directory is flipped and the moved state
    /// pruned from the sender's journal.
    HandoffComplete {
        /// Replicas shipped to the target.
        replicas_moved: usize,
        /// Counters handed over directly (Section 4.2.1).
        counters_moved: usize,
    },
    /// A hand-off aborted before its commit point (the target died or never
    /// acknowledged); the directory is unchanged and the transfer rolled
    /// back.
    HandoffFailed {
        /// What went wrong.
        reason: String,
    },
    /// The target journaled the hand-off bundle.
    InstallAck {
        /// Replicas accepted (stale duplicates are skipped).
        replicas_installed: usize,
        /// Counters received through the direct transfer.
        counters_received: usize,
    },
    /// The request was received but will never be answered properly — the
    /// peer dropped it (e.g. it was in flight towards a peer that died, or a
    /// forward target disappeared). Clients treat this as a failed call
    /// rather than waiting out their reply timeout.
    Error {
        /// What went wrong.
        reason: String,
    },
    /// Answer to a [`Request::Metrics`] scrape: the peer's registry rendered
    /// as Prometheus text exposition (`rdht_metrics::encode`), parseable by
    /// `rdht_metrics::parse`.
    Metrics(String),
    /// Answer to a [`Request::SlowRequests`] scrape: the peer's slowest
    /// recently-completed request trees, slowest first, with per-phase
    /// durations for tail-latency attribution.
    SlowRequests(Vec<rdht_metrics::RequestTree>),
}
