//! Wire messages exchanged between clients and peer threads.

use crossbeam::channel::Sender;

use rdht_core::Timestamp;
use rdht_hashing::{HashId, Key};

/// A request sent to a peer's mailbox. Every request carries the channel the
/// peer should answer on (a one-shot reply channel owned by the caller).
#[derive(Debug)]
pub enum Request {
    /// Store a stamped replica; the peer keeps it only if the stamp is newer
    /// than what it already holds (UMS `put_h` semantics).
    PutReplica {
        /// Replication hash function the replica is stored under.
        hash: HashId,
        /// The application key.
        key: Key,
        /// Replica payload.
        payload: Vec<u8>,
        /// KTS timestamp of the payload.
        timestamp: Timestamp,
        /// Where to send the acknowledgement.
        reply: Sender<Reply>,
    },
    /// Read the replica stored under `(hash, key)`.
    GetReplica {
        /// Replication hash function to read under.
        hash: HashId,
        /// The application key.
        key: Key,
        /// Where to send the result.
        reply: Sender<Reply>,
    },
    /// KTS `gen_ts` / `last_ts` request. If the peer has no valid counter for
    /// the key it answers [`Reply::NeedsInitialization`] and the client
    /// gathers the indirect observation before retrying with
    /// `observation_hint`.
    Timestamp {
        /// The application key.
        key: Key,
        /// True for `gen_ts`, false for `last_ts`.
        generate: bool,
        /// Largest timestamp the client observed among the key's replicas
        /// (the indirect initialization of Section 4.2.2), if it already
        /// gathered one.
        observation_hint: Option<Timestamp>,
        /// Where to send the timestamp.
        reply: Sender<Reply>,
    },
    /// Ask the peer to stop gracefully: it flushes its journal to stable
    /// storage before exiting.
    Shutdown,
    /// Fail-stop the peer: the thread exits immediately, without any final
    /// journal flush — simulating a crash. Only what the fsync policy
    /// already pushed to disk survives.
    Crash,
}

/// A peer's answer to a [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Write acknowledged (whether or not it overwrote existing state).
    PutAck,
    /// Result of a read: the stored payload and timestamp, if any.
    Replica(Option<(Vec<u8>, Timestamp)>),
    /// A timestamp, from `gen_ts` or `last_ts`.
    Timestamp(Timestamp),
    /// The peer has no valid counter for the key and needs the client to run
    /// the indirect initialization first.
    NeedsInitialization,
}
