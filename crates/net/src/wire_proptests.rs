//! Property tests for the wire codec: exhaustive round-trips over every
//! [`Request`]/[`Reply`] variant (including hand-off bundle payloads),
//! plus fuzzing properties — random bytes, truncations and corrupted
//! frames must produce a typed [`WireError`], never a panic.

use proptest::collection::vec;
use proptest::prelude::*;

use rdht_core::Timestamp;
use rdht_hashing::{HashId, Key};
use rdht_membership::HandoffBundle;
use rdht_metrics::TraceContext;
use rdht_storage::StoredReplica;

use crate::cluster::PeerId;
use crate::message::{HandoffFault, HandoffKind, OpId, Reply, Request};
use crate::wire::{
    decode_payload, encode_reply, encode_request, read_frame, Envelope, FrameError, WireError,
    MAX_FRAME_LEN, WIRE_VERSION,
};

/// Raw material for one bundle entry: `(hash, key selector, stamp, position,
/// payload selector)`. Keys and payloads are derived deterministically so the
/// same tuple always builds the same entry.
type BundleRaw = (u32, u8, u64, u64, u8);

fn raw_key(selector: u8) -> Key {
    // Length 0..=16 with repeated content — covers the empty key too.
    Key::from_bytes(vec![selector; (selector % 17) as usize])
}

fn raw_payload(selector: u8, stamp: u64) -> Vec<u8> {
    stamp
        .to_le_bytes()
        .iter()
        .cycle()
        .take((selector % 37) as usize)
        .copied()
        .collect()
}

/// Derives an optional operation id from raw material: odd selectors carry
/// one, even selectors omit it, so both wire encodings are exercised.
fn raw_op(selector: u8, client: u64, seq: u64) -> Option<OpId> {
    (selector % 2 == 1).then_some(OpId { client, seq })
}

/// Raw material for an optional trace context: `(presence selector,
/// trace id, parent span, flags)`. Even selectors omit the context so both
/// wire encodings (absent tag and full context) are exercised.
type TraceRaw = (u8, u64, u64, u8);

fn raw_trace((selector, trace_id, parent_span, flags): TraceRaw) -> Option<TraceContext> {
    (selector % 2 == 1).then_some(TraceContext {
        trace_id,
        parent_span,
        flags,
    })
}

fn make_bundle(raw: &[BundleRaw]) -> HandoffBundle {
    let mut bundle = HandoffBundle::default();
    for &(hash, key_sel, stamp, position, pay_sel) in raw {
        let key = raw_key(key_sel);
        match pay_sel % 3 {
            0 => bundle.replicas.push((
                HashId(hash),
                key,
                StoredReplica {
                    payload: raw_payload(pay_sel, stamp),
                    stamp: Timestamp(stamp),
                    position,
                },
            )),
            1 => bundle.counters.push((key, Timestamp(stamp))),
            _ => bundle.floors.push((key, Timestamp(stamp))),
        }
    }
    bundle
}

/// Builds one of the nine request variants from raw generated material.
fn make_request(
    selector: u8,
    key_bytes: &[u8],
    payload: &[u8],
    hashes: &[u32],
    nums: (u64, u64, u64, u8, u8),
    bundle_raw: &[BundleRaw],
) -> Request {
    let key = Key::from_bytes(key_bytes.to_vec());
    let (a, b, c, flag_a, flag_b) = nums;
    match selector % 9 {
        0 => Request::PutReplica {
            op: raw_op(flag_b, b, c),
            hash: HashId(hashes.first().copied().unwrap_or(7)),
            key,
            payload: payload.to_vec(),
            timestamp: Timestamp(a),
        },
        1 => Request::PutReplicas {
            op: raw_op(flag_b, b, c),
            hashes: hashes.iter().copied().map(HashId).collect(),
            key,
            payload: payload.to_vec(),
            timestamp: Timestamp(a),
        },
        2 => Request::GetReplica {
            hash: HashId(hashes.first().copied().unwrap_or(7)),
            key,
        },
        3 => Request::Timestamp {
            op: raw_op(flag_a.wrapping_shr(1), a, c),
            key,
            generate: flag_a % 2 == 0,
            observation_hint: if flag_b % 2 == 0 {
                None
            } else {
                Some(Timestamp(b))
            },
        },
        4 => Request::HandoffRange {
            op: raw_op(flag_a ^ flag_b, a, b),
            start: a,
            end: b,
            target_id: PeerId(c),
            kind: if flag_a % 2 == 0 {
                HandoffKind::Join
            } else {
                HandoffKind::Leave
            },
            fault: match flag_b % 3 {
                0 => None,
                1 => Some(HandoffFault::CrashAfterExport),
                _ => Some(HandoffFault::CrashAfterInstall),
            },
        },
        5 => Request::InstallState {
            op: raw_op(flag_a, a, b),
            start: a,
            end: b,
            bundle: make_bundle(bundle_raw),
        },
        6 => Request::Shutdown,
        7 => Request::Crash,
        _ => Request::Metrics,
    }
}

/// Builds one of the ten reply variants from raw generated material.
fn make_reply(
    selector: u8,
    payload: &[u8],
    reason_bytes: &[u8],
    nums: (u64, u64, u32, u32),
) -> Reply {
    let (a, b, w, f) = nums;
    let reason = String::from_utf8_lossy(reason_bytes).into_owned();
    match selector % 10 {
        0 => Reply::PutAck,
        1 => Reply::PutsAck {
            written: w,
            failed: f,
        },
        2 => Reply::Replica(if w % 2 == 0 {
            None
        } else {
            Some((payload.to_vec(), Timestamp(a)))
        }),
        3 => Reply::Timestamp(Timestamp(a)),
        4 => Reply::NeedsInitialization,
        5 => Reply::HandoffComplete {
            replicas_moved: a as usize,
            counters_moved: b as usize,
        },
        6 => Reply::HandoffFailed { reason },
        7 => Reply::InstallAck {
            replicas_installed: a as usize,
            counters_received: b as usize,
        },
        8 => Reply::Error { reason },
        _ => Reply::Metrics(reason),
    }
}

/// Splits a full frame into its length prefix and payload, checking the
/// prefix is consistent.
fn split_frame(frame: &[u8]) -> (usize, &[u8]) {
    assert!(frame.len() >= 4, "a frame always has a length prefix");
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    (len, &frame[4..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every request variant survives an encode → decode round trip, the
    /// length prefix matches the payload, and any strict prefix of the
    /// payload fails with a typed error (never a panic, never a bogus
    /// success).
    #[test]
    fn request_round_trip(
        selector in any::<u8>(),
        request_id in any::<u64>(),
        key_bytes in vec(any::<u8>(), 0..48),
        payload in vec(any::<u8>(), 0..160),
        hashes in vec(any::<u32>(), 0..12),
        nums in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>(), any::<u8>()),
        trace_raw in (any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()),
    ) {
        let request = make_request(selector, &key_bytes, &payload, &hashes, nums, &[]);
        let trace = raw_trace(trace_raw);
        let frame = encode_request(request_id, &request, trace);
        let (len, body) = split_frame(&frame);
        prop_assert_eq!(len, body.len());
        prop_assert_eq!(
            decode_payload(body),
            Ok(Envelope::Request { request_id, request, trace })
        );
        for cut in 0..body.len() {
            prop_assert!(decode_payload(&body[..cut]).is_err());
        }
    }

    /// Any trace context — arbitrary trace id, parent span and flag bits —
    /// survives the v4 round trip bit-for-bit, and a frame rewritten to
    /// wire v2 or v3 (the pre-trace layout, context bytes stripped) still
    /// decodes, with the context absent.
    #[test]
    fn trace_context_round_trip_and_downlevel_decode(
        request_id in any::<u64>(),
        key_bytes in vec(any::<u8>(), 0..24),
        trace_id in any::<u64>(),
        parent_span in any::<u64>(),
        flags in any::<u8>(),
        old_version in 2u8..=3,
    ) {
        let request = Request::GetReplica {
            hash: HashId(7),
            key: Key::from_bytes(key_bytes),
        };
        let trace = Some(TraceContext { trace_id, parent_span, flags });
        let frame = encode_request(request_id, &request, trace);
        let (_, body) = split_frame(&frame);
        prop_assert_eq!(
            decode_payload(body),
            Ok(Envelope::Request { request_id, request: request.clone(), trace })
        );

        // Rebuild the same frame as an old sender would have written it:
        // version byte downgraded, the trace bytes (tag + context) gone.
        // Offset 10 is the first trace byte (version + kind + request id).
        let untraced = encode_request(request_id, &request, None);
        let mut old = untraced[4..].to_vec();
        old.remove(10); // the `absent` trace tag v2/v3 never wrote
        old[0] = old_version;
        prop_assert_eq!(
            decode_payload(&old),
            Ok(Envelope::Request { request_id, request, trace: None })
        );
    }

    /// Hand-off bundles — the largest, most nested payload — round-trip with
    /// every replica, counter and floor intact.
    #[test]
    fn install_state_round_trip(
        request_id in any::<u64>(),
        op_raw in (any::<u8>(), any::<u64>(), any::<u64>()),
        start in any::<u64>(),
        end in any::<u64>(),
        bundle_raw in vec((any::<u32>(), any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()), 0..16),
        trace_raw in (any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()),
    ) {
        let request = Request::InstallState {
            op: raw_op(op_raw.0, op_raw.1, op_raw.2),
            start,
            end,
            bundle: make_bundle(&bundle_raw),
        };
        let trace = raw_trace(trace_raw);
        let frame = encode_request(request_id, &request, trace);
        let (len, body) = split_frame(&frame);
        prop_assert_eq!(len, body.len());
        prop_assert_eq!(
            decode_payload(body),
            Ok(Envelope::Request { request_id, request, trace })
        );
    }

    /// Every reply variant survives an encode → decode round trip, and any
    /// strict prefix of the payload fails typed.
    #[test]
    fn reply_round_trip(
        selector in any::<u8>(),
        request_id in any::<u64>(),
        payload in vec(any::<u8>(), 0..160),
        reason_bytes in vec(any::<u8>(), 0..48),
        nums in (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>()),
    ) {
        let reply = make_reply(selector, &payload, &reason_bytes, nums);
        let frame = encode_reply(request_id, &reply);
        let (len, body) = split_frame(&frame);
        prop_assert_eq!(len, body.len());
        prop_assert_eq!(
            decode_payload(body),
            Ok(Envelope::Reply { request_id, reply })
        );
        for cut in 0..body.len() {
            prop_assert!(decode_payload(&body[..cut]).is_err());
        }
    }

    /// Decoding arbitrary bytes never panics, and when it *does* succeed the
    /// bytes must be the canonical encoding of what was decoded (the codec
    /// has no redundant encodings, so within one wire version decode is the
    /// exact inverse of encode; down-level frames re-encode at v4, so the
    /// inverse claim only applies when the version byte is current).
    #[test]
    fn garbage_decodes_to_typed_error_or_canonical_message(
        bytes in vec(any::<u8>(), 0..400),
    ) {
        match decode_payload(&bytes) {
            Err(_) => {} // typed rejection is the expected outcome
            Ok(Envelope::Request { request_id, request, trace }) => {
                if bytes[0] == WIRE_VERSION {
                    prop_assert_eq!(&encode_request(request_id, &request, trace)[4..], &bytes[..]);
                }
            }
            Ok(Envelope::Reply { request_id, reply }) => {
                if bytes[0] == WIRE_VERSION {
                    prop_assert_eq!(&encode_reply(request_id, &reply)[4..], &bytes[..]);
                }
            }
        }
    }

    /// Corrupting a single byte of a valid payload never panics the decoder:
    /// it either fails typed or decodes to some message whose canonical
    /// encoding is the corrupted bytes.
    #[test]
    fn single_byte_corruption_never_panics(
        selector in any::<u8>(),
        request_id in any::<u64>(),
        key_bytes in vec(any::<u8>(), 0..24),
        hashes in vec(any::<u32>(), 0..6),
        nums in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>(), any::<u8>()),
        corruption in (any::<u16>(), any::<u8>()),
        trace_raw in (any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()),
    ) {
        let request = make_request(selector, &key_bytes, &[], &hashes, nums, &[]);
        let frame = encode_request(request_id, &request, raw_trace(trace_raw));
        let (_, body) = split_frame(&frame);
        let mut corrupted = body.to_vec();
        let (at, xor) = corruption;
        let at = at as usize % corrupted.len();
        corrupted[at] ^= xor.max(1); // always flips at least one bit
        let _ = decode_payload(&corrupted); // must not panic
    }

    /// A stream of several concatenated frames reads back frame by frame,
    /// ending with a clean EOF — and an arbitrary tail of garbage after the
    /// last full frame surfaces as an error, not a panic or a bogus frame.
    #[test]
    fn framed_stream_reads_back(
        ids in vec(any::<u64>(), 1..8),
        tail in vec(any::<u8>(), 0..3),
    ) {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for &id in &ids {
            let request = Request::GetReplica {
                hash: HashId(id as u32),
                key: Key::from_bytes(id.to_le_bytes().to_vec()),
            };
            stream.extend_from_slice(&encode_request(id, &request, None));
            expected.push((id, request));
        }
        let clean_len = stream.len();
        stream.extend_from_slice(&tail);
        let mut reader = &stream[..];
        for (id, request) in expected {
            let payload = read_frame(&mut reader).unwrap().expect("frame present");
            prop_assert_eq!(
                decode_payload(&payload),
                Ok(Envelope::Request { request_id: id, request, trace: None })
            );
        }
        if tail.is_empty() {
            prop_assert_eq!(read_frame(&mut reader).unwrap(), None);
        } else {
            // 1–2 stray bytes cannot form a length prefix: EOF mid-prefix.
            prop_assert!(read_frame(&mut reader).is_err());
        }
        prop_assert_eq!(clean_len + tail.len(), stream.len());
    }
}

#[cfg(test)]
mod deterministic {
    use super::*;

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // A prefix claiming u32::MAX bytes (≫ MAX_FRAME_LEN) must be refused
        // from the 4 prefix bytes alone — no buffer allocation, no read of
        // the (absent) payload.
        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = &stream[..];
        match read_frame(&mut reader) {
            Err(FrameError::Wire(WireError::FrameTooLarge { len, max })) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn boundary_length_prefix_is_accepted_one_past_is_not() {
        let over = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut reader = &over[..];
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameError::Wire(WireError::FrameTooLarge { .. }))
        ));
        // Exactly MAX_FRAME_LEN passes the prefix check (and then fails as
        // an incomplete frame, which is an I/O error, not a wire error).
        let at_max = MAX_FRAME_LEN.to_le_bytes();
        let mut reader = &at_max[..];
        assert!(matches!(read_frame(&mut reader), Err(FrameError::Io(_))));
    }

    #[test]
    fn eof_inside_a_frame_is_an_io_error() {
        let frame = encode_request(1, &Request::Shutdown, None);
        let truncated = &frame[..frame.len() - 1];
        let mut reader = truncated;
        assert!(matches!(read_frame(&mut reader), Err(FrameError::Io(_))));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut frame = encode_request(1, &Request::Crash, None);
        frame[4] = WIRE_VERSION + 1; // version byte is first in the payload
        assert_eq!(
            decode_payload(&frame[4..]),
            Err(WireError::UnsupportedVersion(WIRE_VERSION + 1))
        );
    }

    #[test]
    fn unknown_message_kind_is_rejected() {
        let mut frame = encode_request(1, &Request::Crash, None);
        frame[5] = 9; // kind byte: neither request (0) nor reply (1)
        assert_eq!(
            decode_payload(&frame[4..]),
            Err(WireError::UnknownTag {
                context: "message kind",
                tag: 9
            })
        );
    }

    #[test]
    fn bogus_trace_tag_is_rejected() {
        // Offset 10 of the payload is the trace tag (version + kind +
        // request id precede it); only 0 (absent) and 1 (present) are legal.
        let frame = encode_request(1, &Request::Shutdown, None);
        let mut payload = frame[4..].to_vec();
        payload[10] = 2;
        assert_eq!(
            decode_payload(&payload),
            Err(WireError::UnknownTag {
                context: "trace context",
                tag: 2
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let frame = encode_request(1, &Request::Shutdown, None);
        let mut payload = frame[4..].to_vec();
        payload.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            decode_payload(&payload),
            Err(WireError::TrailingBytes { remaining: 3 })
        );
    }

    #[test]
    fn invalid_utf8_in_reason_is_typed() {
        let frame = encode_reply(
            1,
            &Reply::Error {
                reason: "ab".to_string(),
            },
        );
        let mut payload = frame[4..].to_vec();
        let len = payload.len();
        payload[len - 2] = 0xFF; // corrupt the reason's UTF-8 bytes
        payload[len - 1] = 0xFE;
        assert_eq!(
            decode_payload(&payload),
            Err(WireError::InvalidUtf8 {
                context: "error reason"
            })
        );
    }

    #[test]
    fn huge_vector_count_is_rejected_without_allocation() {
        // A PutReplicas body advertising u32::MAX hashes in a tiny payload
        // must fail typed before reserving any capacity.
        let mut payload = Vec::new();
        payload.push(WIRE_VERSION);
        payload.push(0); // kind: request
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(0); // trace context: absent
        payload.push(1); // tag: PutReplicas
        payload.push(0); // op id: absent
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // hash count
        assert_eq!(
            decode_payload(&payload),
            Err(WireError::Truncated {
                context: "puts hashes"
            })
        );
    }
}
