//! The client handle: implements [`UmsAccess`] over real message exchange.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use rdht_core::{PutReplicasOutcome, ReplicaValue, Timestamp, UmsAccess, UmsError};
use rdht_hashing::{HashFamily, HashId, Key};

use crate::cluster::{Directory, PeerId, DEFAULT_FORWARDER_REAP_IDLE};
use crate::message::{Reply, Request};
use crate::tcp::TcpTransport;
use crate::transport::{CallError, PeerEndpoint, PendingReply, Transport};

/// How long a client waits for a peer's reply before treating it as failed.
const REPLY_TIMEOUT: Duration = Duration::from_secs(5);

/// A client of a [`crate::Cluster`]: resolves responsibilities from the
/// shared directory and exchanges request/reply messages with peers through
/// their [`PeerEndpoint`]s — the same code path whether the peers are
/// threads in this process (channel transport) or processes across TCP
/// ([`ClusterClient::connect_tcp`]).
///
/// `ClusterClient` implements [`UmsAccess`], so the *same* `rdht_core::ums`
/// insert/retrieve code that runs in the simulator runs here — against real
/// threads (or sockets) and real races.
pub struct ClusterClient {
    directory: Arc<Directory>,
    /// Messages sent by this client (request + reply counted separately),
    /// the cluster analogue of the simulator's message metric.
    messages: u64,
    /// How many times a timestamp request came back `NeedsInitialization`
    /// and this client ran the indirect initialization (gathered the
    /// replicas' maximum timestamp) before retrying.
    indirect_initializations: u64,
}

/// Maps a transport-level call failure onto the client's [`UmsError`].
fn call_failed(error: CallError) -> UmsError {
    match error {
        CallError::Timeout => UmsError::lookup("responsible peer did not reply in time"),
        CallError::Dropped => {
            UmsError::lookup("responsible peer dropped the request (crashed mid-request)")
        }
        CallError::Rejected(reason) => {
            UmsError::lookup(format!("the request was rejected: {reason}"))
        }
        CallError::Transport(error) => {
            UmsError::lookup(format!("responsible peer is unreachable: {error}"))
        }
    }
}

impl ClusterClient {
    pub(crate) fn new(directory: Arc<Directory>) -> Self {
        ClusterClient {
            directory,
            messages: 0,
            indirect_initializations: 0,
        }
    }

    /// Connects to a multi-process TCP deployment: `peers` is the static
    /// address book every [`crate::serve_tcp_peer`] process was configured
    /// with, and `num_replicas` / `seed` must match the peers' configuration
    /// too (they determine the hash family, and therefore routing).
    pub fn connect_tcp(
        peers: impl IntoIterator<Item = (PeerId, SocketAddr)>,
        num_replicas: usize,
        seed: u64,
    ) -> ClusterClient {
        let peers: Vec<(PeerId, SocketAddr)> = peers.into_iter().collect();
        let transport: Arc<dyn Transport> =
            Arc::new(TcpTransport::with_peers(peers.iter().copied()));
        let mut ring: BTreeMap<PeerId, (PeerEndpoint, bool)> = BTreeMap::new();
        for (peer, _) in &peers {
            let endpoint = transport
                .endpoint(*peer)
                .expect("every address-book entry resolves to an endpoint");
            ring.insert(*peer, (endpoint, true));
        }
        let directory = Arc::new(Directory {
            family: HashFamily::new(num_replicas, seed),
            transport,
            peers: RwLock::new(ring),
            message_delay: Duration::ZERO,
            forwarder_reap_idle: DEFAULT_FORWARDER_REAP_IDLE,
        });
        ClusterClient::new(directory)
    }

    /// Number of messages this client has exchanged so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Number of indirect counter initializations this client performed —
    /// the observable footprint of the Section 4.2.2 recovery path (a
    /// responsible serving from a valid in-memory counter never triggers
    /// one).
    pub fn indirect_initializations(&self) -> u64 {
        self.indirect_initializations
    }

    fn request(&mut self, position: u64, request: Request) -> Result<Reply, UmsError> {
        let (_peer, endpoint) = self
            .directory
            .responsible_for(position)
            .ok_or(UmsError::EmptyOverlay)?;
        let pending = endpoint
            .send(request)
            .map_err(|error| call_failed(CallError::Transport(error)))?;
        self.messages += 1;
        let reply = pending.wait(REPLY_TIMEOUT).map_err(call_failed)?;
        self.messages += 1;
        Ok(reply)
    }

    /// Gathers the indirect observation for a key: reads every replica and
    /// returns the largest timestamp seen (Section 4.2.2), or
    /// [`Timestamp::ZERO`] when no replica exists.
    fn gather_observation(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        let mut max = Timestamp::ZERO;
        for hash in self.replication_ids() {
            if let Ok(Some(replica)) = self.get_replica(hash, key) {
                if replica.timestamp > max {
                    max = replica.timestamp;
                }
            }
        }
        Ok(max)
    }

    fn timestamp_request(&mut self, key: &Key, generate: bool) -> Result<Timestamp, UmsError> {
        let position = self.directory.family.eval_timestamp(key);
        let first = self.request(
            position,
            Request::Timestamp {
                key: key.clone(),
                generate,
                observation_hint: None,
            },
        )?;
        match first {
            Reply::Timestamp(ts) => Ok(ts),
            Reply::NeedsInitialization => {
                // The responsible has no valid counter (it took over after a
                // crash): run the indirect initialization and retry.
                self.indirect_initializations += 1;
                let observed = self.gather_observation(key)?;
                let second = self.request(
                    position,
                    Request::Timestamp {
                        key: key.clone(),
                        generate,
                        observation_hint: Some(observed),
                    },
                )?;
                match second {
                    Reply::Timestamp(ts) => Ok(ts),
                    other => Err(UmsError::kts(format!(
                        "unexpected reply to initialized timestamp request: {other:?}"
                    ))),
                }
            }
            other => Err(UmsError::kts(format!(
                "unexpected reply to timestamp request: {other:?}"
            ))),
        }
    }
}

impl UmsAccess for ClusterClient {
    fn kts_gen_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        self.timestamp_request(key, true)
    }

    fn kts_last_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        self.timestamp_request(key, false)
    }

    fn put_replica(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &ReplicaValue,
    ) -> Result<(), UmsError> {
        let position = self.directory.family.eval(hash, key);
        let reply = self.request(
            position,
            Request::PutReplica {
                hash,
                key: key.clone(),
                payload: value.data.clone(),
                timestamp: value.timestamp,
            },
        )?;
        match reply {
            Reply::PutAck => Ok(()),
            other => Err(UmsError::lookup(format!(
                "unexpected reply to put: {other:?}"
            ))),
        }
    }

    /// The batched fan-out: the `|Hr|` puts of one insert are grouped by
    /// responsible peer and shipped as one [`Request::PutReplicas`] per
    /// peer — over TCP that is one round trip per peer instead of one per
    /// hash. The groups are sent before any reply is awaited, so the peers
    /// work in parallel; each answers one [`Reply::PutsAck`] once its last
    /// constituent put (including any it had to forward under churn)
    /// completed.
    fn put_replicas(&mut self, key: &Key, value: &ReplicaValue) -> PutReplicasOutcome {
        let mut outcome = PutReplicasOutcome::default();
        let mut groups: BTreeMap<PeerId, (PeerEndpoint, Vec<HashId>)> = BTreeMap::new();
        for hash in self.replication_ids() {
            let position = self.directory.family.eval(hash, key);
            match self.directory.responsible_for(position) {
                Some((peer, endpoint)) => {
                    groups
                        .entry(peer)
                        .or_insert_with(|| (endpoint, Vec::new()))
                        .1
                        .push(hash);
                }
                None => outcome.failed += 1,
            }
        }
        let mut waits: Vec<(usize, PendingReply)> = Vec::new();
        for (_, (endpoint, hashes)) in groups {
            let count = hashes.len();
            let request = Request::PutReplicas {
                hashes,
                key: key.clone(),
                payload: value.data.clone(),
                timestamp: value.timestamp,
            };
            match endpoint.send(request) {
                Ok(pending) => {
                    self.messages += 1;
                    waits.push((count, pending));
                }
                Err(_) => outcome.failed += count,
            }
        }
        for (count, pending) in waits {
            match pending.wait(REPLY_TIMEOUT) {
                Ok(Reply::PutsAck { written, failed }) => {
                    self.messages += 1;
                    outcome.written += written as usize;
                    outcome.failed += failed as usize;
                }
                Ok(_) | Err(_) => outcome.failed += count,
            }
        }
        outcome
    }

    fn get_replica(&mut self, hash: HashId, key: &Key) -> Result<Option<ReplicaValue>, UmsError> {
        let position = self.directory.family.eval(hash, key);
        let reply = self.request(
            position,
            Request::GetReplica {
                hash,
                key: key.clone(),
            },
        )?;
        match reply {
            Reply::Replica(stored) => {
                Ok(stored.map(|(payload, timestamp)| ReplicaValue::new(payload, timestamp)))
            }
            other => Err(UmsError::lookup(format!(
                "unexpected reply to get: {other:?}"
            ))),
        }
    }

    fn replication_count(&self) -> usize {
        self.directory.family.num_replication()
    }
}
