//! The client handle: implements [`UmsAccess`] over real message exchange.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::bounded;

use rdht_core::{ReplicaValue, Timestamp, UmsAccess, UmsError};
use rdht_hashing::{HashId, Key};

use crate::cluster::Directory;
use crate::message::{Reply, Request};

/// How long a client waits for a peer's reply before treating it as failed.
const REPLY_TIMEOUT: Duration = Duration::from_secs(5);

/// A client of a [`crate::Cluster`]: resolves responsibilities from the
/// shared directory and exchanges request/reply messages with peer threads.
///
/// `ClusterClient` implements [`UmsAccess`], so the *same* `rdht_core::ums`
/// insert/retrieve code that runs in the simulator runs here — against real
/// threads and real races.
pub struct ClusterClient {
    directory: Arc<Directory>,
    /// Messages sent by this client (request + reply counted separately),
    /// the cluster analogue of the simulator's message metric.
    messages: u64,
    /// How many times a timestamp request came back `NeedsInitialization`
    /// and this client ran the indirect initialization (gathered the
    /// replicas' maximum timestamp) before retrying.
    indirect_initializations: u64,
}

impl ClusterClient {
    pub(crate) fn new(directory: Arc<Directory>) -> Self {
        ClusterClient {
            directory,
            messages: 0,
            indirect_initializations: 0,
        }
    }

    /// Number of messages this client has exchanged so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Number of indirect counter initializations this client performed —
    /// the observable footprint of the Section 4.2.2 recovery path (a
    /// responsible serving from a valid in-memory counter never triggers
    /// one).
    pub fn indirect_initializations(&self) -> u64 {
        self.indirect_initializations
    }

    fn request(
        &mut self,
        position: u64,
        build: impl FnOnce(crossbeam::channel::Sender<Reply>) -> Request,
    ) -> Result<Reply, UmsError> {
        let (_peer, mailbox) = self
            .directory
            .responsible_for(position)
            .ok_or(UmsError::EmptyOverlay)?;
        let (reply_tx, reply_rx) = bounded(1);
        mailbox
            .send(build(reply_tx))
            .map_err(|_| UmsError::lookup("responsible peer's mailbox is closed"))?;
        self.messages += 1;
        let reply = reply_rx
            .recv_timeout(REPLY_TIMEOUT)
            .map_err(|_| UmsError::lookup("responsible peer did not reply in time"))?;
        self.messages += 1;
        Ok(reply)
    }

    /// Gathers the indirect observation for a key: reads every replica and
    /// returns the largest timestamp seen (Section 4.2.2), or
    /// [`Timestamp::ZERO`] when no replica exists.
    fn gather_observation(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        let mut max = Timestamp::ZERO;
        for hash in self.replication_ids() {
            if let Ok(Some(replica)) = self.get_replica(hash, key) {
                if replica.timestamp > max {
                    max = replica.timestamp;
                }
            }
        }
        Ok(max)
    }

    fn timestamp_request(&mut self, key: &Key, generate: bool) -> Result<Timestamp, UmsError> {
        let position = self.directory.family.eval_timestamp(key);
        let first = self.request(position, |reply| Request::Timestamp {
            key: key.clone(),
            generate,
            observation_hint: None,
            reply,
        })?;
        match first {
            Reply::Timestamp(ts) => Ok(ts),
            Reply::NeedsInitialization => {
                // The responsible has no valid counter (it took over after a
                // crash): run the indirect initialization and retry.
                self.indirect_initializations += 1;
                let observed = self.gather_observation(key)?;
                let second = self.request(position, |reply| Request::Timestamp {
                    key: key.clone(),
                    generate,
                    observation_hint: Some(observed),
                    reply,
                })?;
                match second {
                    Reply::Timestamp(ts) => Ok(ts),
                    other => Err(UmsError::kts(format!(
                        "unexpected reply to initialized timestamp request: {other:?}"
                    ))),
                }
            }
            other => Err(UmsError::kts(format!(
                "unexpected reply to timestamp request: {other:?}"
            ))),
        }
    }
}

impl UmsAccess for ClusterClient {
    fn kts_gen_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        self.timestamp_request(key, true)
    }

    fn kts_last_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        self.timestamp_request(key, false)
    }

    fn put_replica(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &ReplicaValue,
    ) -> Result<(), UmsError> {
        let position = self.directory.family.eval(hash, key);
        let reply = self.request(position, |reply| Request::PutReplica {
            hash,
            key: key.clone(),
            payload: value.data.clone(),
            timestamp: value.timestamp,
            reply,
        })?;
        match reply {
            Reply::PutAck => Ok(()),
            other => Err(UmsError::lookup(format!(
                "unexpected reply to put: {other:?}"
            ))),
        }
    }

    fn get_replica(&mut self, hash: HashId, key: &Key) -> Result<Option<ReplicaValue>, UmsError> {
        let position = self.directory.family.eval(hash, key);
        let reply = self.request(position, |reply| Request::GetReplica {
            hash,
            key: key.clone(),
            reply,
        })?;
        match reply {
            Reply::Replica(stored) => {
                Ok(stored.map(|(payload, timestamp)| ReplicaValue::new(payload, timestamp)))
            }
            other => Err(UmsError::lookup(format!(
                "unexpected reply to get: {other:?}"
            ))),
        }
    }

    fn replication_count(&self) -> usize {
        self.directory.family.num_replication()
    }
}
