//! The client handle: implements [`UmsAccess`] over real message exchange,
//! with deadline + retry + backoff on every call so a lossy network costs
//! latency instead of failed operations.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdht_core::{PutReplicasOutcome, ReplicaValue, Timestamp, UmsAccess, UmsError};
use rdht_hashing::{HashFamily, HashId, Key};
use rdht_metrics::{Counter, Registry, RequestTree, SpanLog, TraceConfig, TraceContext, TraceSink};

use crate::cluster::{
    request_kind, sink_ts, traceable, us, DedupCounters, Directory, PeerId,
    DEFAULT_FORWARDER_REAP_IDLE,
};
use crate::message::{OpId, Reply, Request};
use crate::metrics::names;
use crate::tcp::TcpTransport;
use crate::transport::{CallError, PeerEndpoint, PendingReply, Transport};

/// How a client retries a call that produced no usable reply: `attempts`
/// tries, each waiting `try_timeout` for the reply, with truncated
/// exponential backoff (± `jitter`) between them. Replaces the old single
/// hard-coded reply timeout — one lost frame used to be a failed operation;
/// now it is a re-send, made safe by the peers' dedup windows (every retry
/// repeats the operation's [`OpId`], so mutations apply exactly once).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (1 = the old no-retry behaviour).
    pub attempts: u32,
    /// Per-attempt reply deadline.
    pub try_timeout: Duration,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Cap on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Uniform jitter fraction applied to each backoff: the actual sleep is
    /// `backoff * (1 ± jitter)`. Keeps a fleet of retrying clients from
    /// re-converging on the same instant.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            try_timeout: Duration::from_secs(5),
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy tuned for fault-plan tests: many quick attempts with short
    /// deadlines, so a seeded lossy link is ridden out in milliseconds.
    pub fn aggressive() -> Self {
        RetryPolicy {
            attempts: 8,
            try_timeout: Duration::from_millis(300),
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(80),
            jitter: 0.25,
        }
    }

    fn backoff_for(&self, retry_index: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32 << retry_index.min(16));
        doubled.min(self.max_backoff)
    }
}

static NEXT_ACTOR: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique (and with high probability deployment-unique)
/// actor id — the `client` half of the [`OpId`]s an actor issues. Mixes a
/// process-local counter with wall-clock nanos and the pid so two processes
/// of a TCP deployment do not collide in the peers' dedup windows.
pub(crate) fn allocate_actor_id() -> u64 {
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    // relaxed: uniqueness needs only RMW atomicity, no ordering.
    let counter = NEXT_ACTOR.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|since| since.as_nanos() as u64)
        .unwrap_or(0);
    let pid = u64::from(std::process::id());
    mix(counter
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(nanos.rotate_left(17))
        .wrapping_add(pid << 48))
}

/// A client of a [`crate::Cluster`]: resolves responsibilities from the
/// shared directory and exchanges request/reply messages with peers through
/// their [`PeerEndpoint`]s — the same code path whether the peers are
/// threads in this process (channel transport) or processes across TCP
/// ([`ClusterClient::connect_tcp`]).
///
/// `ClusterClient` implements [`UmsAccess`], so the *same* `rdht_core::ums`
/// insert/retrieve code that runs in the simulator runs here — against real
/// threads (or sockets) and real races. Every call runs under the client's
/// [`RetryPolicy`]: responsibility is re-resolved per attempt (churn may
/// have moved the range between retries) and every retry of a mutation
/// repeats its [`OpId`], so the peers' dedup windows keep re-sends
/// exactly-once.
pub struct ClusterClient {
    directory: Arc<Directory>,
    retry: RetryPolicy,
    /// The `client` namespace of this handle's [`OpId`]s.
    client_id: u64,
    /// Next fresh `seq`; every *logical* operation gets one, every re-send
    /// of it repeats it.
    next_seq: u64,
    /// Backoff jitter source (seeded from the client id; jitter needs
    /// decorrelation, not reproducibility).
    rng: StdRng,
    /// Messages sent by this client (request + reply counted separately),
    /// the cluster analogue of the simulator's message metric. A
    /// registry-grade handle so [`ClusterClient::attach_metrics`] exposes
    /// the same atomic the accessor reads.
    messages: Counter,
    /// How many times a timestamp request came back `NeedsInitialization`
    /// and this client ran the indirect initialization (gathered the
    /// replicas' maximum timestamp) before retrying.
    indirect_initializations: Counter,
    /// Retry attempts beyond each call's first attempt.
    retries: Counter,
    /// Calls that spent their whole retry budget without a usable reply.
    retry_exhaustions: Counter,
    /// Distributed tracing, when attached ([`ClusterClient::attach_trace`]).
    tracing: Option<ClientTracing>,
}

/// Ring capacity of the client-side slowlog ([`ClusterClient::slow_calls`]).
const CLIENT_SLOWLOG_CAPACITY: usize = 64;

/// The client half of distributed tracing: the sampling knobs, the sink
/// client-side spans land in, and a local ring of the slowest calls.
struct ClientTracing {
    sink: TraceSink,
    config: TraceConfig,
    slowlog: SpanLog,
}

/// Short label of a transport-level attempt outcome, recorded in the
/// `client.attempt` span args.
fn outcome_label(error: &CallError) -> &'static str {
    match error {
        CallError::Timeout => "timeout",
        CallError::Dropped => "dropped",
        CallError::Rejected(_) => "rejected",
        CallError::Transport(_) => "transport",
        CallError::Exhausted { .. } => "exhausted",
    }
}

/// Maps a transport-level call failure onto the client's [`UmsError`].
fn call_failed(error: CallError) -> UmsError {
    match error {
        CallError::Timeout => UmsError::lookup("responsible peer did not reply in time"),
        CallError::Dropped => {
            UmsError::lookup("responsible peer dropped the request (crashed mid-request)")
        }
        CallError::Rejected(reason) => {
            UmsError::lookup(format!("the request was rejected: {reason}"))
        }
        CallError::Transport(error) => {
            UmsError::lookup(format!("responsible peer is unreachable: {error}"))
        }
        CallError::Exhausted { attempts, last } => {
            UmsError::lookup(format!("all {attempts} attempts failed; last: {last}"))
        }
    }
}

impl ClusterClient {
    pub(crate) fn new(directory: Arc<Directory>) -> Self {
        let client_id = allocate_actor_id();
        ClusterClient {
            directory,
            retry: RetryPolicy::default(),
            client_id,
            next_seq: 0,
            rng: StdRng::seed_from_u64(client_id),
            messages: Counter::new(),
            indirect_initializations: Counter::new(),
            retries: Counter::new(),
            retry_exhaustions: Counter::new(),
            tracing: None,
        }
    }

    /// Connects to a multi-process TCP deployment: `peers` is the static
    /// address book every [`crate::serve_tcp_peer`] process was configured
    /// with, and `num_replicas` / `seed` must match the peers' configuration
    /// too (they determine the hash family, and therefore routing).
    pub fn connect_tcp(
        peers: impl IntoIterator<Item = (PeerId, SocketAddr)>,
        num_replicas: usize,
        seed: u64,
    ) -> ClusterClient {
        let peers: Vec<(PeerId, SocketAddr)> = peers.into_iter().collect();
        let transport: Arc<dyn Transport> =
            Arc::new(TcpTransport::with_peers(peers.iter().copied()));
        let mut ring: BTreeMap<PeerId, (PeerEndpoint, bool)> = BTreeMap::new();
        for (peer, _) in &peers {
            let endpoint = transport
                .endpoint(*peer)
                .expect("every address-book entry resolves to an endpoint");
            ring.insert(*peer, (endpoint, true));
        }
        let directory = Arc::new(Directory {
            family: HashFamily::new(num_replicas, seed),
            transport,
            peers: RwLock::new(ring),
            message_delay: Duration::ZERO,
            forwarder_reap_idle: DEFAULT_FORWARDER_REAP_IDLE,
            dedup: DedupCounters::default(),
        });
        ClusterClient::new(directory)
    }

    /// Returns this client with the given retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Replaces this client's retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The retry policy calls run under.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Number of messages this client has exchanged so far.
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Number of indirect counter initializations this client performed —
    /// the observable footprint of the Section 4.2.2 recovery path (a
    /// responsible serving from a valid in-memory counter never triggers
    /// one).
    pub fn indirect_initializations(&self) -> u64 {
        self.indirect_initializations.get()
    }

    /// Retry attempts this client made beyond each call's first attempt.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Calls that spent their whole retry budget without a usable reply.
    pub fn retry_exhaustions(&self) -> u64 {
        self.retry_exhaustions.get()
    }

    /// Registers this client's counters into `registry` as shared handles:
    /// the accessors ([`ClusterClient::messages`], ...) and the registry
    /// read the same atomics. `labels` distinguish handles when several
    /// clients share one registry (e.g. `&[("client", "writer-0")]`).
    pub fn attach_metrics(&self, registry: &Registry, labels: &[(&str, &str)]) {
        registry.register_counter(
            names::CLIENT_MESSAGES,
            "messages this client exchanged (requests and replies counted separately)",
            labels,
            self.messages.clone(),
        );
        registry.register_counter(
            names::CLIENT_RETRIES,
            "retry attempts beyond each call's first attempt",
            labels,
            self.retries.clone(),
        );
        registry.register_counter(
            names::CLIENT_RETRY_EXHAUSTIONS,
            "calls that spent their whole retry budget without a usable reply",
            labels,
            self.retry_exhaustions.clone(),
        );
        registry.register_counter(
            names::CLIENT_INDIRECT_INITS,
            "indirect counter initializations this client ran (Section 4.2.2)",
            labels,
            self.indirect_initializations.clone(),
        );
    }

    /// Attaches distributed tracing to this handle: each logical call rolls
    /// the sampler ([`TraceConfig::sample_rate`]); sampled calls carry a
    /// [`TraceContext`] on the wire (the peers record their own span trees
    /// under the same trace id) and record `client.call` / `client.attempt`
    /// spans into `sink`. Calls slower than [`TraceConfig::slow_threshold`]
    /// are recorded even when the sampler skipped them, so an unlucky tail
    /// is never invisible. Introspection requests (metrics and slowlog
    /// scrapes) and lifecycle messages bypass the sampler entirely.
    pub fn attach_trace(&mut self, sink: TraceSink, config: TraceConfig) {
        self.tracing = Some(ClientTracing {
            sink,
            config,
            slowlog: SpanLog::new(CLIENT_SLOWLOG_CAPACITY),
        });
    }

    /// The sink [`ClusterClient::attach_trace`] installed, if any.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.tracing.as_ref().map(|tracing| &tracing.sink)
    }

    /// The `k` slowest calls this handle recorded client-side (sampled
    /// ones, plus anything over the slow threshold), slowest first. Empty
    /// without [`ClusterClient::attach_trace`].
    pub fn slow_calls(&self, k: usize) -> Vec<RequestTree> {
        self.tracing
            .as_ref()
            .map(|tracing| tracing.slowlog.slowest(k))
            .unwrap_or_default()
    }

    /// Scrapes `peer`'s slow-request log over the wire: sends
    /// [`Request::SlowRequests`] and returns the `k` slowest request trees
    /// the peer completed recently, slowest first, each with its per-phase
    /// breakdown (queue wait, apply, batch wait, fsync, reply). Runs under
    /// the same retry policy as every other call; the scrape itself
    /// bypasses the sampler, so it never appears in the log it reads.
    pub fn slow_requests(&mut self, peer: PeerId, k: u32) -> Result<Vec<RequestTree>, UmsError> {
        let attempts = self.retry.attempts.max(1);
        let mut last: Option<CallError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries.inc();
                self.backoff_sleep(attempt - 1);
            }
            let endpoint = self
                .directory
                .peers
                .read()
                .get(&peer)
                .map(|(endpoint, _)| endpoint.clone());
            let Some(endpoint) = endpoint else {
                return Err(UmsError::lookup(format!(
                    "unknown slowlog scrape target {:016x}",
                    peer.0
                )));
            };
            let outcome = match endpoint.send(Request::SlowRequests { k }) {
                Ok(pending) => {
                    self.messages.inc();
                    pending.wait(self.retry.try_timeout)
                }
                Err(error) => Err(CallError::Transport(error)),
            };
            match outcome {
                Ok(reply) => {
                    self.messages.inc();
                    return match reply {
                        Reply::SlowRequests(trees) => Ok(trees),
                        Reply::Error { reason } => Err(UmsError::lookup(format!(
                            "slowlog scrape refused: {reason}"
                        ))),
                        other => Err(UmsError::lookup(format!(
                            "unexpected reply to slowlog scrape: {other:?}"
                        ))),
                    };
                }
                Err(error) => last = Some(error),
            }
        }
        self.retry_exhaustions.inc();
        let last = last.unwrap_or(CallError::Timeout);
        Err(call_failed(if attempts == 1 {
            last
        } else {
            CallError::Exhausted {
                attempts,
                last: Box::new(last),
            }
        }))
    }

    /// Rolls the sampler for one logical call of a traceable kind: `Some`
    /// when tracing is attached and the dice say record.
    fn sample(&mut self) -> Option<TraceContext> {
        let rate = self.tracing.as_ref()?.config.sample_rate;
        if rate <= 0.0 {
            return None;
        }
        if rate < 1.0 && self.rng.gen::<f64>() >= rate {
            return None;
        }
        // Trace ids come from the jitter rng (seeded per client), so two
        // client processes of a deployment do not collide.
        Some(TraceContext::sampled_root(self.rng.gen::<u64>() | 1))
    }

    /// Records one finished attempt as a `client.attempt` span, tagged with
    /// the attempt index, the preceding backoff and the outcome.
    fn emit_attempt(
        &self,
        context: Option<TraceContext>,
        attempt: u32,
        start: Instant,
        backoff: Duration,
        outcome: &str,
    ) {
        let Some(tracing) = &self.tracing else { return };
        let Some(context) = context else { return };
        tracing.sink.complete_with_args(
            "client.attempt",
            u64::from(std::process::id()),
            0,
            sink_ts(&tracing.sink, start),
            us(start.elapsed()),
            vec![
                ("trace_id".to_string(), format!("{:016x}", context.trace_id)),
                ("attempt".to_string(), attempt.to_string()),
                ("backoff_us".to_string(), us(backoff).to_string()),
                ("outcome".to_string(), outcome.to_string()),
            ],
        );
    }

    /// Finalizes one logical call: records the root `client.call` span and
    /// a client-side [`RequestTree`] when the call was sampled — or when it
    /// crossed the slow threshold, so unsampled tail calls still surface.
    fn finish_trace(
        &mut self,
        kind: &'static str,
        context: Option<TraceContext>,
        started: Option<Instant>,
        phases: Vec<(String, u64)>,
        outcome: &str,
    ) {
        let Some(started) = started else { return };
        let Some(tracing) = &self.tracing else { return };
        let total = started.elapsed();
        let slow = total >= tracing.config.slow_threshold;
        if context.is_none() && !slow {
            return;
        }
        let trace_id = context
            .map(|context| context.trace_id)
            .unwrap_or_else(rdht_metrics::next_span_id);
        tracing.sink.complete_with_args(
            "client.call",
            u64::from(std::process::id()),
            0,
            sink_ts(&tracing.sink, started),
            us(total),
            vec![
                ("trace_id".to_string(), format!("{trace_id:016x}")),
                ("kind".to_string(), kind.to_string()),
                ("outcome".to_string(), outcome.to_string()),
            ],
        );
        tracing.slowlog.push(RequestTree {
            trace_id,
            name: format!("client.{kind}"),
            total_us: us(total),
            phases,
        });
    }

    /// Scrapes `peer`'s metrics over the wire: sends [`Request::Metrics`]
    /// and returns the peer's Prometheus text exposition, under the same
    /// retry policy as every other call. Errors when the peer is unknown,
    /// stays unreachable through the retry budget, or runs with metrics
    /// disabled ([`crate::ClusterConfig::with_metrics`]).
    pub fn scrape_metrics(&mut self, peer: PeerId) -> Result<String, UmsError> {
        let attempts = self.retry.attempts.max(1);
        let mut last: Option<CallError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries.inc();
                self.backoff_sleep(attempt - 1);
            }
            let endpoint = self
                .directory
                .peers
                .read()
                .get(&peer)
                .map(|(endpoint, _)| endpoint.clone());
            let Some(endpoint) = endpoint else {
                return Err(UmsError::lookup(format!(
                    "unknown scrape target {:016x}",
                    peer.0
                )));
            };
            let outcome = match endpoint.send(Request::Metrics) {
                Ok(pending) => {
                    self.messages.inc();
                    pending.wait(self.retry.try_timeout)
                }
                Err(error) => Err(CallError::Transport(error)),
            };
            match outcome {
                Ok(reply) => {
                    self.messages.inc();
                    return match reply {
                        Reply::Metrics(exposition) => Ok(exposition),
                        Reply::Error { reason } => Err(UmsError::lookup(format!(
                            "metrics scrape refused: {reason}"
                        ))),
                        other => Err(UmsError::lookup(format!(
                            "unexpected reply to metrics scrape: {other:?}"
                        ))),
                    };
                }
                Err(error) => last = Some(error),
            }
        }
        self.retry_exhaustions.inc();
        let last = last.unwrap_or(CallError::Timeout);
        Err(call_failed(if attempts == 1 {
            last
        } else {
            CallError::Exhausted {
                attempts,
                last: Box::new(last),
            }
        }))
    }

    /// A fresh [`OpId`] for one logical operation; its retries repeat it.
    fn next_op(&mut self) -> OpId {
        let seq = self.next_seq;
        self.next_seq += 1;
        OpId {
            client: self.client_id,
            seq,
        }
    }

    /// Sleeps the truncated-exponential, jittered backoff before retry
    /// number `retry_index` (0-based).
    fn backoff_sleep(&mut self, retry_index: u32) {
        let backoff = self.retry.backoff_for(retry_index);
        if backoff.is_zero() {
            return;
        }
        let spread = 1.0 + self.retry.jitter * (self.rng.gen::<f64>() * 2.0 - 1.0);
        std::thread::sleep(backoff.mul_f64(spread.max(0.0)));
    }

    /// One call under the retry policy: per attempt, re-resolve the peer
    /// responsible for `position` (churn may have moved it between
    /// retries), send, and wait `try_timeout`. *Every* failure kind is
    /// retried — a timeout may be loss, a teardown may be a crash another
    /// peer already failed over, a rejection may be a forward that raced a
    /// reap; re-resolving and re-sending is the answer to all of them, and
    /// the dedup windows make it safe for mutations.
    fn request(&mut self, position: u64, request: Request) -> Result<Reply, UmsError> {
        let kind = request_kind(&request);
        let context = traceable(&request).then(|| self.sample()).flatten();
        // Timing is captured whenever tracing is attached (not only when
        // sampled), so the slow-threshold fallback can surface unsampled
        // tail calls; without tracing the loop pays nothing.
        let started = self.tracing.as_ref().map(|_| Instant::now());
        let mut phases: Vec<(String, u64)> = Vec::new();
        let attempts = self.retry.attempts.max(1);
        let mut last: Option<CallError> = None;
        for attempt in 0..attempts {
            let mut backoff = Duration::ZERO;
            if attempt > 0 {
                self.retries.inc();
                let backoff_start = started.map(|_| Instant::now());
                self.backoff_sleep(attempt - 1);
                if let Some(backoff_start) = backoff_start {
                    backoff = backoff_start.elapsed();
                    phases.push((format!("backoff{attempt}"), us(backoff)));
                }
            }
            let Some((_peer, endpoint)) = self.directory.responsible_for(position) else {
                self.finish_trace(kind, context, started, phases, "empty-overlay");
                return Err(UmsError::EmptyOverlay);
            };
            let attempt_started = started.map(|_| Instant::now());
            // Every attempt carries the same trace id; the attempt span is
            // the wire parent, so peer spans nest under the attempt that
            // reached them.
            let wire_context = context.map(|root| root.child_of(rdht_metrics::next_span_id()));
            let outcome = match endpoint.send_traced(request.clone(), wire_context) {
                Ok(pending) => {
                    self.messages.inc();
                    pending.wait(self.retry.try_timeout)
                }
                Err(error) => Err(CallError::Transport(error)),
            };
            match outcome {
                Ok(reply) => {
                    self.messages.inc();
                    if let Some(attempt_started) = attempt_started {
                        phases.push((format!("attempt{attempt}"), us(attempt_started.elapsed())));
                        self.emit_attempt(context, attempt, attempt_started, backoff, "ok");
                    }
                    self.finish_trace(kind, context, started, phases, "ok");
                    return Ok(reply);
                }
                Err(error) => {
                    if let Some(attempt_started) = attempt_started {
                        phases.push((format!("attempt{attempt}"), us(attempt_started.elapsed())));
                        self.emit_attempt(
                            context,
                            attempt,
                            attempt_started,
                            backoff,
                            outcome_label(&error),
                        );
                    }
                    last = Some(error);
                }
            }
        }
        self.retry_exhaustions.inc();
        let last = last.unwrap_or(CallError::Timeout);
        self.finish_trace(kind, context, started, phases, outcome_label(&last));
        Err(call_failed(if attempts == 1 {
            last
        } else {
            CallError::Exhausted {
                attempts,
                last: Box::new(last),
            }
        }))
    }

    /// Gathers the indirect observation for a key: reads every replica and
    /// returns the largest timestamp seen (Section 4.2.2), or
    /// [`Timestamp::ZERO`] when no replica exists.
    fn gather_observation(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        let mut max = Timestamp::ZERO;
        for hash in self.replication_ids() {
            if let Ok(Some(replica)) = self.get_replica(hash, key) {
                if replica.timestamp > max {
                    max = replica.timestamp;
                }
            }
        }
        Ok(max)
    }

    fn timestamp_request(&mut self, key: &Key, generate: bool) -> Result<Timestamp, UmsError> {
        let position = self.directory.family.eval_timestamp(key);
        // Only a `gen_ts` is a mutation; `last_ts` is a pure read and needs
        // no dedup identity.
        let op = generate.then(|| self.next_op());
        let first = self.request(
            position,
            Request::Timestamp {
                op,
                key: key.clone(),
                generate,
                observation_hint: None,
            },
        )?;
        match first {
            Reply::Timestamp(ts) => Ok(ts),
            Reply::NeedsInitialization => {
                // The responsible has no valid counter (it took over after a
                // crash): run the indirect initialization and retry. The
                // hint-carrying call is a *new* logical operation and MUST
                // get a fresh op — reusing the first op would be answered
                // from the cached `NeedsInitialization` forever.
                self.indirect_initializations.inc();
                let observed = self.gather_observation(key)?;
                let op = generate.then(|| self.next_op());
                let second = self.request(
                    position,
                    Request::Timestamp {
                        op,
                        key: key.clone(),
                        generate,
                        observation_hint: Some(observed),
                    },
                )?;
                match second {
                    Reply::Timestamp(ts) => Ok(ts),
                    other => Err(UmsError::kts(format!(
                        "unexpected reply to initialized timestamp request: {other:?}"
                    ))),
                }
            }
            other => Err(UmsError::kts(format!(
                "unexpected reply to timestamp request: {other:?}"
            ))),
        }
    }
}

impl UmsAccess for ClusterClient {
    fn kts_gen_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        self.timestamp_request(key, true)
    }

    fn kts_last_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        self.timestamp_request(key, false)
    }

    fn put_replica(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &ReplicaValue,
    ) -> Result<(), UmsError> {
        let position = self.directory.family.eval(hash, key);
        let op = Some(self.next_op());
        let reply = self.request(
            position,
            Request::PutReplica {
                op,
                hash,
                key: key.clone(),
                payload: value.data.clone(),
                timestamp: value.timestamp,
            },
        )?;
        match reply {
            Reply::PutAck => Ok(()),
            other => Err(UmsError::lookup(format!(
                "unexpected reply to put: {other:?}"
            ))),
        }
    }

    /// The batched fan-out: the `|Hr|` puts of one insert are grouped by
    /// responsible peer and shipped as one [`Request::PutReplicas`] per
    /// peer — over TCP that is one round trip per peer instead of one per
    /// hash. The groups are sent before any reply is awaited, so the peers
    /// work in parallel; each answers one [`Reply::PutsAck`] once its last
    /// constituent put (including any it had to forward under churn)
    /// completed.
    ///
    /// Under the retry policy, a group whose ack was lost (or that reported
    /// partial failure) is re-grouped against the *current* directory view
    /// and re-sent under the same [`OpId`] — the applying peers re-ack
    /// already-applied constituents from their dedup caches, so the final
    /// attempt's counts are correct without double-crediting. Only clean
    /// acks (`failed == 0`) are credited early; a partially failed group is
    /// re-queued whole and credited solely by its last attempt.
    fn put_replicas(&mut self, key: &Key, value: &ReplicaValue) -> PutReplicasOutcome {
        let op = Some(self.next_op());
        let context = self.sample();
        let started = self.tracing.as_ref().map(|_| Instant::now());
        let mut phases: Vec<(String, u64)> = Vec::new();
        let mut outcome = PutReplicasOutcome::default();
        let mut remaining: Vec<HashId> = self.replication_ids().collect();
        let attempts = self.retry.attempts.max(1);
        for attempt in 0..attempts {
            let mut backoff = Duration::ZERO;
            if attempt > 0 {
                self.retries.inc();
                let backoff_start = started.map(|_| Instant::now());
                self.backoff_sleep(attempt - 1);
                if let Some(backoff_start) = backoff_start {
                    backoff = backoff_start.elapsed();
                    phases.push((format!("backoff{attempt}"), us(backoff)));
                }
            }
            let attempt_started = started.map(|_| Instant::now());
            let final_attempt = attempt + 1 == attempts;
            let mut groups: BTreeMap<PeerId, (PeerEndpoint, Vec<HashId>)> = BTreeMap::new();
            let mut unroutable: Vec<HashId> = Vec::new();
            for hash in remaining.drain(..) {
                let position = self.directory.family.eval(hash, key);
                match self.directory.responsible_for(position) {
                    Some((peer, endpoint)) => {
                        groups
                            .entry(peer)
                            .or_insert_with(|| (endpoint, Vec::new()))
                            .1
                            .push(hash);
                    }
                    None => unroutable.push(hash),
                }
            }
            let mut waits: Vec<(Vec<HashId>, PendingReply)> = Vec::new();
            for (_, (endpoint, hashes)) in groups {
                let request = Request::PutReplicas {
                    op,
                    hashes: hashes.clone(),
                    key: key.clone(),
                    payload: value.data.clone(),
                    timestamp: value.timestamp,
                };
                // Every per-peer group of the fan-out carries the same
                // trace id, so the applying peers' span trees (one per
                // constituent put) correlate back to this logical insert.
                let wire_context = context.map(|root| root.child_of(rdht_metrics::next_span_id()));
                match endpoint.send_traced(request, wire_context) {
                    Ok(pending) => {
                        self.messages.inc();
                        waits.push((hashes, pending));
                    }
                    Err(_) if final_attempt => outcome.failed += hashes.len(),
                    Err(_) => remaining.extend(hashes),
                }
            }
            for (hashes, pending) in waits {
                match pending.wait(self.retry.try_timeout) {
                    Ok(Reply::PutsAck { written, failed: 0 }) => {
                        self.messages.inc();
                        outcome.written += written as usize;
                    }
                    Ok(Reply::PutsAck { written, failed }) if final_attempt => {
                        self.messages.inc();
                        outcome.written += written as usize;
                        outcome.failed += failed as usize;
                    }
                    Ok(Reply::PutsAck { .. }) => {
                        // Partial failure mid-budget: re-queue the whole
                        // group uncredited — the retry's cached re-acks make
                        // the final count correct without double-crediting.
                        self.messages.inc();
                        remaining.extend(hashes);
                    }
                    Ok(_) | Err(_) if final_attempt => outcome.failed += hashes.len(),
                    Ok(_) | Err(_) => remaining.extend(hashes),
                }
            }
            if final_attempt {
                outcome.failed += unroutable.len();
            } else {
                remaining.extend(unroutable);
            }
            if let Some(attempt_started) = attempt_started {
                phases.push((format!("attempt{attempt}"), us(attempt_started.elapsed())));
                let label = if remaining.is_empty() { "ok" } else { "retry" };
                self.emit_attempt(context, attempt, attempt_started, backoff, label);
            }
            if remaining.is_empty() {
                break;
            }
        }
        let label = if outcome.failed == 0 { "ok" } else { "partial" };
        self.finish_trace("puts", context, started, phases, label);
        outcome
    }

    fn get_replica(&mut self, hash: HashId, key: &Key) -> Result<Option<ReplicaValue>, UmsError> {
        let position = self.directory.family.eval(hash, key);
        let reply = self.request(
            position,
            Request::GetReplica {
                hash,
                key: key.clone(),
            },
        )?;
        match reply {
            Reply::Replica(stored) => {
                Ok(stored.map(|(payload, timestamp)| ReplicaValue::new(payload, timestamp)))
            }
            other => Err(UmsError::lookup(format!(
                "unexpected reply to get: {other:?}"
            ))),
        }
    }

    fn replication_count(&self) -> usize {
        self.directory.family.num_replication()
    }
}
