//! A threaded, message-passing deployment of UMS/KTS — the in-process
//! analogue of the paper's 64-node cluster experiment (Section 5.2).
//!
//! Every peer of a [`Cluster`] is a real OS thread with a mailbox
//! (crossbeam channels). Clients ([`ClusterClient`]) talk to peers only by
//! sending messages: replica reads and writes go to the peer currently
//! responsible for the key, timestamp requests go to the responsible of
//! timestamping, and an optional artificial per-message delay models network
//! latency. Unlike the discrete-event simulator, nothing here is virtual
//! time: concurrency, interleavings and races are real, which is what this
//! crate is for — validating that the UMS/KTS logic (which is the *same*
//! `rdht-core` code the simulator runs) behaves correctly when updates and
//! retrievals genuinely race and when the timestamping responsible genuinely
//! crashes mid-workload.
//!
//! ## Deployment model
//!
//! The cluster uses a static membership list (all peers know the sorted peer
//! identifiers, as on a real 64-node cluster) with successor-on-the-ring
//! responsibility, i.e. a one-hop DHT: clients resolve `rsp(k, h)` locally
//! and send one message. The full multi-hop Chord routing is exercised by
//! `rdht-overlay` and `rdht-sim`; this crate focuses on real concurrency.
//! When the KTS responsible finds no valid counter, it answers
//! `NeedsInitialization` and the *client* gathers the indirect observation
//! (reading the replicas) before retrying — functionally the indirect
//! algorithm of Section 4.2.2, restructured so that peer threads never block
//! on each other.
//!
//! ```
//! use rdht_core::ums;
//! use rdht_hashing::Key;
//! use rdht_net::Cluster;
//!
//! let cluster = Cluster::spawn(8, 5, 42);
//! let mut client = cluster.client();
//! let key = Key::new("agenda:kickoff");
//! ums::insert(&mut client, &key, b"10:00".to_vec()).unwrap();
//! ums::insert(&mut client, &key, b"11:00".to_vec()).unwrap();
//! let got = ums::retrieve(&mut client, &key).unwrap();
//! assert!(got.is_current);
//! assert_eq!(got.data.unwrap(), b"11:00");
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
mod message;

pub use client::ClusterClient;
pub use cluster::{Cluster, ClusterConfig, PeerId};
pub use message::{Reply, Request};

#[cfg(test)]
mod tests;
