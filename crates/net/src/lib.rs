//! A threaded, message-passing deployment of UMS/KTS — the in-process
//! analogue of the paper's 64-node cluster experiment (Section 5.2).
//!
//! Every peer of a [`Cluster`] is a real OS thread with a [`Mailbox`], and
//! everything that reaches a mailbox travels through a pluggable
//! [`Transport`]. Clients ([`ClusterClient`]) talk to peers only by sending
//! messages: replica reads and writes go to the peer currently responsible
//! for the key, timestamp requests go to the responsible of timestamping,
//! and an optional artificial per-message delay models network latency.
//! Unlike the discrete-event simulator, nothing here is virtual time:
//! concurrency, interleavings and races are real, which is what this crate
//! is for — validating that the UMS/KTS logic (which is the *same*
//! `rdht-core` code the simulator runs) behaves correctly when updates and
//! retrievals genuinely race and when the timestamping responsible genuinely
//! crashes mid-workload.
//!
//! ## Transports
//!
//! The peer loop, forwarding, hand-offs and crash/restart are written once
//! against the [`Transport`] trait (bind a peer to get its [`Mailbox`],
//! resolve a [`PeerEndpoint`] to send and await replies). Two backends
//! implement it:
//!
//! * [`ChannelTransport`] — an in-process mailbox mesh over channels: no
//!   serialization, no sockets, deterministic and fast. The default
//!   ([`TransportKind::Channel`]).
//! * [`TcpTransport`] — length-framed TCP ([`wire`], a deterministic
//!   versioned binary codec) over loopback or the network: per-peer
//!   acceptor threads, connection reuse, and typed rejection of garbage or
//!   oversized frames ([`WireError`]) — a hostile client costs one dropped
//!   connection, never a peer. Select it with
//!   [`ClusterConfig::with_transport`], or run real multi-process
//!   deployments via [`serve_tcp_peer`] + [`ClusterClient::connect_tcp`]
//!   (see `examples/tcp_cluster.rs`).
//!
//! The transport conformance suite (`tests/conformance.rs`) asserts the
//! same behavioural contract — pipelined request/reply matching, concurrent
//! clients, typed failures on crash, forwarding through departed peers —
//! against both backends.
//!
//! ## Deployment model
//!
//! The cluster uses a shared membership directory (all peers know the sorted
//! peer identifiers, as on a real 64-node cluster) with
//! successor-on-the-ring responsibility, i.e. a one-hop DHT: clients resolve
//! `rsp(k, h)` locally and send one message. The full multi-hop Chord
//! routing is exercised by `rdht-overlay` and `rdht-sim`; this crate focuses
//! on real concurrency. When the KTS responsible finds no valid counter, it
//! answers `NeedsInitialization` and the *client* gathers the indirect
//! observation (reading the replicas) before retrying — functionally the
//! indirect algorithm of Section 4.2.2, restructured so that peer threads
//! never block on each other.
//!
//! ## Elastic membership
//!
//! The ring is not a fixed deployment: [`Cluster::join_peer`] adds a live
//! peer (its successor splits its range and ships the covered replicas and
//! counters through `rdht-membership`'s journaled hand-off protocol) and
//! [`Cluster::leave_peer`] runs the **direct algorithm** of Section 4.2.1 —
//! the departing peer hands every counter straight to its successor, so the
//! graceful path causes **zero** indirect re-initializations. The commit
//! point of either hand-off flips the shared directory inside the peer's
//! serial request loop, and requests routed under the old view are
//! *forwarded* to the new owner, so clients never observe a half-moved
//! range. A peer killed mid-transfer restarts from its journal and the
//! transfer either rolls back (nothing shipped: the source still holds every
//! replica) or completes (the target already journaled the bundle; a
//! retried join/leave converges). A departed peer forwards only as long as
//! requests routed under the old view can still be in flight: after a
//! bounded idle period ([`ClusterConfig::forwarder_reap_idle`]) its thread
//! and channel are reaped, and any stale forwarding rule that later finds
//! its target gone re-resolves through the shared directory.
//!
//! ## Durability and crash/restart
//!
//! With [`ClusterConfig::storage`] set, every peer journals its replicas and
//! counter mutations to its own `rdht-storage` directory (write-ahead log +
//! snapshot compaction). [`Cluster::crash_peer`] fail-stops a peer thread
//! with no final flush; [`Cluster::restart_peer`] recovers the peer's
//! durable state from disk (tolerating a torn WAL tail) and respawns it. The
//! restarted peer serves its recovered replicas immediately, but — per the
//! paper's Rule 1 — its live Valid Counter Set starts empty: the durable
//! counter images may be stale (another peer may have generated newer
//! timestamps while it was down), so the first timestamp request per key
//! takes the observable indirect-initialization path of Section 4.2.2
//! against the (durable) replicas.
//!
//! With `FsyncPolicy::GroupCommit` in the storage options every peer runs
//! its request loop in **drain-apply-sync-reply** mode — the group-commit
//! deployment: all queued data requests (bounded by `max_batch`) are
//! drained, applied and journaled, made durable by a single covering fsync,
//! and only then acknowledged. N concurrent writers at `Always`-grade
//! ack-after-fsync durability share one fsync instead of paying one each;
//! the `storage` bench bin quantifies the win (tens of times the per-op
//! `Always` throughput at 8+ writers).
//!
//! ## Observability
//!
//! Every peer of a metrics-enabled cluster (the default; see
//! [`ClusterConfig::with_metrics`]) carries an `rdht-metrics` registry
//! ([`metrics::PeerMetrics`]): request counts by kind, queue depth and
//! drained batch sizes of the group-commit loop, per-message service-time
//! histograms, hand-off phase durations and stall time, indirect counter
//! initializations, the storage engine's WAL instruments, and — as shared
//! handles — the cluster-wide dedup totals and fault-plan counters. Scrape
//! a peer in-process with [`Cluster::scrape`], or over the wire (either
//! transport) with [`ClusterClient::scrape_metrics`], which sends
//! [`Request::Metrics`] and returns the Prometheus text exposition (see
//! `examples/metrics.rs`).
//!
//! ```
//! use rdht_core::ums;
//! use rdht_hashing::Key;
//! use rdht_net::Cluster;
//!
//! let cluster = Cluster::spawn(8, 5, 42);
//! let mut client = cluster.client();
//! let key = Key::new("agenda:kickoff");
//! ums::insert(&mut client, &key, b"10:00".to_vec()).unwrap();
//! ums::insert(&mut client, &key, b"11:00".to_vec()).unwrap();
//! let got = ums::retrieve(&mut client, &key).unwrap();
//! assert!(got.is_current);
//! assert_eq!(got.data.unwrap(), b"11:00");
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
pub mod fault;
mod message;
pub mod metrics;
mod tcp;
mod transport;
pub mod wire;

pub use client::{ClusterClient, RetryPolicy};
pub use cluster::{
    serve_tcp_peer, Cluster, ClusterConfig, ClusterStorage, DedupStats, JoinReport, LeaveReport,
    PeerId, RestartReport, TcpPeerConfig, TransportKind,
};
pub use fault::{End, FaultPlan, FaultStats, FaultyTransport, LinkCounters, LinkFaults};
pub use message::{HandoffFault, HandoffKind, OpId, Reply, Request};
pub use metrics::{PeerMetrics, RequestCounters};
pub use rdht_membership::MembershipError;
pub use rdht_metrics::{
    merge_chrome_trace_files, RequestTree, TraceConfig, TraceContext, TraceSink,
};
pub use tcp::TcpTransport;
pub use transport::{
    CallError, ChannelTransport, EndpointImpl, Incoming, Mailbox, PeerEndpoint, PendingReply,
    ReplyHook, ReplySink, ReplyWriter, SendRejected, Transport, TransportError,
};
pub use wire::{WireError, MAX_FRAME_LEN, MIN_WIRE_VERSION, WIRE_VERSION};

#[cfg(test)]
mod tests;
#[cfg(test)]
mod wire_proptests;
