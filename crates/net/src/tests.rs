//! Tests of the threaded deployment: real concurrency, real failover, real
//! crash/restart recovery from on-disk peer state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rdht_core::{ums, UmsAccess};
use rdht_hashing::Key;
use rdht_storage::{FsyncPolicy, StorageOptions};

use crate::{Cluster, ClusterConfig, ClusterStorage, HandoffFault, MembershipError, PeerId};

static STORAGE_ROOT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh storage root for one test, removed up-front in case a previous
/// run left debris.
fn fresh_storage_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "rdht-net-test-{}-{}-{tag}",
        std::process::id(),
        // relaxed: uniqueness needs only RMW atomicity, no ordering.
        STORAGE_ROOT_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn insert_and_retrieve_round_trip() {
    let cluster = Cluster::spawn(8, 5, 1);
    let mut client = cluster.client();
    let key = Key::new("doc");
    let report = ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();
    assert_eq!(report.replicas_written, 5);
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"v1");
    assert!(client.messages() > 0);
    cluster.shutdown();
}

#[test]
fn updates_supersede_older_values() {
    let cluster = Cluster::spawn(6, 4, 2);
    let mut client = cluster.client();
    let key = Key::new("doc");
    for i in 0..10u32 {
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
    }
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"v9");
    cluster.shutdown();
}

#[test]
fn retrieve_of_unknown_key_returns_nothing() {
    let cluster = Cluster::spawn(4, 3, 3);
    let mut client = cluster.client();
    let got = ums::retrieve(&mut client, &Key::new("nothing here")).unwrap();
    assert!(got.data.is_none());
    assert!(!got.is_current);
    cluster.shutdown();
}

#[test]
fn concurrent_writers_converge_to_single_latest_value() {
    // Many threads update the same key concurrently through their own
    // clients; afterwards, a retrieve returns one of the written values, it
    // is certified current, and its timestamp equals the last timestamp KTS
    // generated (the race resolved deterministically via timestamps).
    let cluster = Arc::new(Cluster::spawn(12, 6, 4));
    let key = Key::new("contended");
    let writers = 8;
    let updates_per_writer = 25;

    std::thread::scope(|scope| {
        for w in 0..writers {
            let cluster = Arc::clone(&cluster);
            let key = key.clone();
            scope.spawn(move || {
                let mut client = cluster.client();
                for i in 0..updates_per_writer {
                    let payload = format!("writer-{w}-update-{i}").into_bytes();
                    ums::insert(&mut client, &key, payload).unwrap();
                }
            });
        }
    });

    let mut client = cluster.client();
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(
        got.is_current,
        "after all writers finish the retrieve must be certified current"
    );
    let data = got.data.unwrap();
    assert!(String::from_utf8_lossy(&data).starts_with("writer-"));
    // The winning timestamp is the total number of generated timestamps.
    assert_eq!(got.timestamp.0, (writers * updates_per_writer) as u64);

    // Every replica slot now stores that same winning timestamp (mutual
    // consistency of replicas after the race).
    let last = got.timestamp;
    for hash in client.replication_ids() {
        let replica = client.get_replica(hash, &key).unwrap().unwrap();
        assert_eq!(replica.timestamp, last);
        assert_eq!(replica.data, data);
    }

    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}

#[test]
fn readers_and_writers_race_without_stale_certified_answers() {
    let cluster = Arc::new(Cluster::spawn(10, 5, 5));
    let key = Key::new("live feed");
    {
        let mut client = cluster.client();
        ums::insert(&mut client, &key, b"seed".to_vec()).unwrap();
    }

    std::thread::scope(|scope| {
        let writer_cluster = Arc::clone(&cluster);
        let writer_key = key.clone();
        scope.spawn(move || {
            let mut client = writer_cluster.client();
            for i in 0..50u32 {
                ums::insert(&mut client, &writer_key, format!("rev-{i}").into_bytes()).unwrap();
            }
        });
        for _ in 0..3 {
            let reader_cluster = Arc::clone(&cluster);
            let reader_key = key.clone();
            scope.spawn(move || {
                let mut client = reader_cluster.client();
                for _ in 0..30 {
                    let got = ums::retrieve(&mut client, &reader_key).unwrap();
                    // A certified answer must carry the timestamp KTS reported
                    // as the latest at that moment — never older.
                    if got.is_current {
                        assert_eq!(got.timestamp, got.last_timestamp);
                    }
                    assert!(got.data.is_some());
                }
            });
        }
    });

    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}

#[test]
fn crash_of_timestamp_responsible_triggers_indirect_initialization() {
    let cluster = Cluster::spawn(10, 6, 6);
    let key = Key::new("important doc");
    let mut client = cluster.client();
    for i in 0..5u32 {
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
    }
    let before = ums::retrieve(&mut client, &key).unwrap();
    assert!(before.is_current);

    // Kill the peer that generates timestamps for this key; its counters die
    // with it. The next responsible must re-initialize from the replicas.
    let responsible = cluster.timestamp_responsible(&key).unwrap();
    cluster.crash_peer(responsible).unwrap();
    assert!(cluster.live_peers() < 10);

    let after = ums::retrieve(&mut client, &key).unwrap();
    assert_eq!(
        after.data.unwrap(),
        b"v4",
        "latest surviving value is still returned"
    );

    // Updates keep working and remain monotonic after the failover.
    let report = ums::insert(&mut client, &key, b"v5".to_vec()).unwrap();
    assert!(report.timestamp > before.timestamp);
    let finally = ums::retrieve(&mut client, &key).unwrap();
    assert!(finally.is_current);
    assert_eq!(finally.data.unwrap(), b"v5");
    cluster.shutdown();
}

#[test]
fn crash_of_replica_holders_degrades_availability_not_correctness() {
    let cluster = Cluster::spawn(12, 8, 7);
    let key = Key::new("doc");
    let mut client = cluster.client();
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();
    ums::insert(&mut client, &key, b"v2".to_vec()).unwrap();

    // Crash holders of the first few replicas (two hash functions can map
    // to the same peer, so an AlreadyDead error here is expected).
    for hash in client.replication_ids().into_iter().take(4) {
        if let Some(peer) = cluster.replica_responsible(hash, &key) {
            let _ = cluster.crash_peer(peer);
        }
    }
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert_eq!(
        got.data.unwrap(),
        b"v2",
        "surviving replicas still serve the latest value"
    );
    cluster.shutdown();
}

/// The ISSUE 3 acceptance test: the KTS responsible is crashed (its thread
/// torn down), restarted from its storage directory, and a subsequent
/// retrieve is certified current with the pre-crash latest payload — with
/// the indirect-initialization path (not a counter left in memory)
/// observably taken.
#[test]
fn crash_restart_of_kts_responsible_recovers_indirectly() {
    let root = fresh_storage_root("kts-responsible");
    let config = ClusterConfig::new(8, 5, 11).with_storage(ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::Always),
    ));
    let mut cluster = Cluster::spawn_with(config);
    let key = Key::new("important doc");
    let mut client = cluster.client();
    for i in 0..5u32 {
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
    }
    let before = ums::retrieve(&mut client, &key).unwrap();
    assert!(before.is_current);

    // Kill the peer that generates timestamps for this key, then bring it
    // back from its on-disk directory.
    let responsible = cluster.timestamp_responsible(&key).unwrap();
    cluster.crash_peer(responsible).unwrap();
    assert_eq!(cluster.live_peers(), 7);

    let report = cluster.restart_peer(responsible).unwrap();
    assert_eq!(cluster.live_peers(), 8);
    // The peer owns its old ring position again.
    assert_eq!(cluster.timestamp_responsible(&key), Some(responsible));
    // Its durable counter image for the key survived the crash…
    assert!(
        report.recovered_counters >= 1,
        "the timestamp responsible journaled at least this key's counter"
    );

    // …but the live VCS starts empty (Rule 1): the retrieve must take the
    // indirect-initialization path, observable as a NeedsInitialization
    // round-trip on a fresh client, and still certify the pre-crash value.
    let mut fresh = cluster.client();
    assert_eq!(fresh.indirect_initializations(), 0);
    let after = ums::retrieve(&mut fresh, &key).unwrap();
    assert_eq!(
        fresh.indirect_initializations(),
        1,
        "the restarted responsible had no in-memory counter"
    );
    assert!(after.is_current, "currency is re-certified after recovery");
    assert_eq!(after.data.unwrap(), b"v4", "pre-crash latest payload");
    assert_eq!(after.timestamp, before.timestamp);

    // Updates continue monotonically after the recovery.
    let next = ums::insert(&mut fresh, &key, b"v5".to_vec()).unwrap();
    assert!(next.timestamp > before.timestamp);
    let finally = ums::retrieve(&mut fresh, &key).unwrap();
    assert!(finally.is_current);
    assert_eq!(finally.data.unwrap(), b"v5");

    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Stronger durability claim: crash *every* peer (all in-memory state gone),
/// restart them all from disk, and every key still retrieves current. The
/// data can only have come from the journals.
#[test]
fn whole_cluster_crash_restart_serves_current_data_from_disk() {
    let root = fresh_storage_root("whole-cluster");
    let config = ClusterConfig::new(6, 4, 12).with_storage(ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::EveryN(4)),
    ));
    let mut cluster = Cluster::spawn_with(config);
    let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("doc-{i}"))).collect();
    {
        let mut client = cluster.client();
        for (i, key) in keys.iter().enumerate() {
            for version in 0..=i {
                let payload = format!("doc-{i}-v{version}").into_bytes();
                ums::insert(&mut client, key, payload).unwrap();
            }
        }
    }

    let peers = cluster.peer_ids();
    for &peer in &peers {
        cluster.crash_peer(peer).unwrap();
    }
    assert_eq!(cluster.live_peers(), 0);
    let mut recovered_replicas = 0;
    for &peer in &peers {
        let report = cluster.restart_peer(peer).unwrap();
        recovered_replicas += report.recovered_replicas;
    }
    assert_eq!(cluster.live_peers(), peers.len());
    // Every (key, hash) replica written must be back: 8 keys × |Hr| = 4.
    // (FsyncPolicy::EveryN leaves at most a tail unsynced on a *power*
    // failure; a thread crash loses nothing already written to the fs.)
    assert_eq!(recovered_replicas, keys.len() * 4);

    let mut client = cluster.client();
    for (i, key) in keys.iter().enumerate() {
        let got = ums::retrieve(&mut client, key).unwrap();
        assert!(got.is_current, "doc-{i} must re-certify from durable state");
        assert_eq!(got.data.unwrap(), format!("doc-{i}-v{i}").into_bytes());
    }
    assert!(
        client.indirect_initializations() >= keys.len() as u64,
        "every key's counter had to be re-initialized indirectly"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Restarting a peer of a storage-less cluster simply rejoins it empty —
/// the volatile analogue of a rejoin after failure.
#[test]
fn restart_without_storage_rejoins_empty() {
    let mut cluster = Cluster::spawn(5, 3, 13);
    let key = Key::new("doc");
    let mut client = cluster.client();
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();

    let victim = cluster.timestamp_responsible(&key).unwrap();
    cluster.crash_peer(victim).unwrap();
    let report = cluster.restart_peer(victim).unwrap();
    assert_eq!(report.recovered_replicas, 0);
    assert_eq!(report.recovered_counters, 0);
    assert_eq!(cluster.live_peers(), 5);

    // The surviving replicas still certify the value through indirect init.
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert_eq!(got.data.unwrap(), b"v1");
    cluster.shutdown();
}

/// The ISSUE 4 satellite: lifecycle operations against unknown or
/// already-dead peer ids report errors instead of silently no-op'ing.
#[test]
fn lifecycle_operations_report_unknown_and_dead_peers() {
    let mut cluster = Cluster::spawn(3, 3, 14);
    let bogus = crate::PeerId(0xdead_beef);
    assert!(!cluster.peer_ids().contains(&bogus));
    assert_eq!(
        cluster.restart_peer(bogus),
        Err(MembershipError::UnknownPeer(bogus.0))
    );
    assert_eq!(
        cluster.crash_peer(bogus),
        Err(MembershipError::UnknownPeer(bogus.0))
    );
    assert_eq!(
        cluster.leave_peer(bogus),
        Err(MembershipError::UnknownPeer(bogus.0))
    );

    // A double crash is an error too: the second call tested nothing.
    let victim = cluster.peer_ids()[0];
    cluster.crash_peer(victim).unwrap();
    assert_eq!(
        cluster.crash_peer(victim),
        Err(MembershipError::AlreadyDead(victim.0))
    );
    assert_eq!(
        cluster.leave_peer(victim),
        Err(MembershipError::AlreadyDead(victim.0))
    );
    // Joining an id that already exists (even dead: its identity is
    // reserved for restart) is rejected.
    assert_eq!(
        cluster.join_peer(victim),
        Err(MembershipError::AlreadyMember(victim.0))
    );

    // Restart works on the dead peer and brings the count back.
    cluster.restart_peer(victim).unwrap();
    assert_eq!(cluster.live_peers(), 3);
    cluster.shutdown();
}

/// A durable peer's journal survives a *graceful* shutdown too: a second
/// cluster spawned over the same root serves the data.
#[test]
fn cluster_respawn_over_same_root_keeps_data() {
    let root = fresh_storage_root("respawn");
    let storage = ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::Never), // Shutdown syncs
    );
    let key = Key::new("persistent doc");
    {
        let cluster =
            Cluster::spawn_with(ClusterConfig::new(4, 3, 15).with_storage(storage.clone()));
        let mut client = cluster.client();
        ums::insert(&mut client, &key, b"kept".to_vec()).unwrap();
        cluster.shutdown();
    }
    {
        // Same seed -> same peer ids -> same peer directories.
        let cluster = Cluster::spawn_with(ClusterConfig::new(4, 3, 15).with_storage(storage));
        let mut client = cluster.client();
        let got = ums::retrieve(&mut client, &key).unwrap();
        assert!(got.is_current);
        assert_eq!(got.data.unwrap(), b"kept");
        cluster.shutdown();
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// The ISSUE 3 satellite: the artificial message delay must not apply to
/// shutdown drains — a delayed cluster shuts down promptly.
#[test]
fn delayed_cluster_shuts_down_promptly() {
    let mut config = ClusterConfig::new(8, 3, 16);
    config.message_delay = std::time::Duration::from_millis(150);
    let cluster = Cluster::spawn_with(config);
    let start = std::time::Instant::now();
    cluster.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_millis(100),
        "shutdown must skip the artificial delay, took {elapsed:?}"
    );
}

#[test]
fn artificial_delay_slows_operations_down() {
    let fast = Cluster::spawn(4, 3, 8);
    let mut config = ClusterConfig::new(4, 3, 8);
    config.message_delay = std::time::Duration::from_millis(2);
    let slow = Cluster::spawn_with(config);

    let key = Key::new("doc");
    let mut fast_client = fast.client();
    let mut slow_client = slow.client();

    let t0 = std::time::Instant::now();
    ums::insert(&mut fast_client, &key, b"v".to_vec()).unwrap();
    let fast_elapsed = t0.elapsed();

    let t1 = std::time::Instant::now();
    ums::insert(&mut slow_client, &key, b"v".to_vec()).unwrap();
    let slow_elapsed = t1.elapsed();

    assert!(slow_elapsed > fast_elapsed);
    fast.shutdown();
    slow.shutdown();
}

#[test]
fn peer_ids_are_stable_and_sorted() {
    let cluster = Cluster::spawn(16, 4, 9);
    let ids = cluster.peer_ids();
    assert_eq!(ids.len(), 16);
    assert!(ids.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(cluster.live_peers(), 16);
    cluster.shutdown();
}

#[test]
#[should_panic(expected = "at least one peer")]
fn empty_cluster_is_rejected() {
    let _ = Cluster::spawn(0, 3, 10);
}

/// The ISSUE 5 acceptance test: full-durability group commit under real
/// concurrency. Eight writer threads hammer a storage-backed cluster whose
/// peers run the drain-apply-sync-reply loop (`FsyncPolicy::GroupCommit`);
/// every insert is acknowledged only after its covering fsync, and a
/// whole-cluster crash + restart afterwards recovers every acknowledged
/// value from the journals alone.
#[test]
fn group_commit_concurrent_writers_recover_after_whole_cluster_crash() {
    let root = fresh_storage_root("group-commit-acceptance");
    let config = ClusterConfig::new(6, 4, 31).with_storage(ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::group_commit(
            64,
            std::time::Duration::from_micros(100),
        )),
    ));
    let cluster = Arc::new(Cluster::spawn_with(config));
    let writers = 8;
    let keys_per_writer = 6;

    std::thread::scope(|scope| {
        for w in 0..writers {
            let cluster = Arc::clone(&cluster);
            scope.spawn(move || {
                let mut client = cluster.client();
                for i in 0..keys_per_writer {
                    let key = Key::new(format!("w{w}-doc-{i}"));
                    ums::insert(&mut client, &key, format!("w{w}-v{i}").into_bytes())
                        .expect("group-commit insert");
                }
            });
        }
    });

    let mut cluster = match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster,
        Err(_) => panic!("cluster still shared"),
    };
    // Every acknowledged write reads back current before the crash…
    let mut client = cluster.client();
    for w in 0..writers {
        for i in 0..keys_per_writer {
            let key = Key::new(format!("w{w}-doc-{i}"));
            let got = ums::retrieve(&mut client, &key).unwrap();
            assert!(got.is_current, "{key:?} current under group commit");
            assert_eq!(got.data.unwrap(), format!("w{w}-v{i}").into_bytes());
        }
    }
    // …and after a whole-cluster fail-stop, from the journals alone.
    let peers = cluster.peer_ids();
    for &peer in &peers {
        cluster.crash_peer(peer).unwrap();
    }
    for &peer in &peers {
        cluster.restart_peer(peer).unwrap();
    }
    let mut recovered = cluster.client();
    for w in 0..writers {
        for i in 0..keys_per_writer {
            let key = Key::new(format!("w{w}-doc-{i}"));
            let got = ums::retrieve(&mut recovered, &key).unwrap();
            assert!(got.is_current, "{key:?} recovered after crash");
            assert_eq!(got.data.unwrap(), format!("w{w}-v{i}").into_bytes());
        }
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// The ISSUE 5 satellite, net half: the same deterministic request sequence
/// issued against a per-op (`Always`) cluster and a group-commit cluster of
/// the same seed produces **identical replies, reply for reply** — insert
/// reports, retrieve payloads, certification flags and timestamps — and
/// identical replica state afterwards. Batching changes syscalls, never
/// observable semantics.
#[test]
fn group_commit_is_reply_for_reply_identical_to_per_op_path() {
    let roots = [
        fresh_storage_root("reply-for-reply-always"),
        fresh_storage_root("reply-for-reply-group"),
    ];
    let policies = [
        FsyncPolicy::Always,
        FsyncPolicy::group_commit(32, std::time::Duration::from_micros(50)),
    ];
    let keys: Vec<Key> = (0..7).map(|i| Key::new(format!("doc-{i}"))).collect();

    let mut transcripts = Vec::new();
    for (root, policy) in roots.iter().zip(policies) {
        let config = ClusterConfig::new(5, 4, 33).with_storage(ClusterStorage::with_options(
            root,
            StorageOptions::with_fsync(policy),
        ));
        let cluster = Cluster::spawn_with(config);
        let mut client = cluster.client();
        let mut transcript: Vec<String> = Vec::new();
        // A fixed mixed workload: interleaved inserts and retrieves whose
        // pattern exercises overwrites, fresh keys and read-your-writes.
        for round in 0..4u64 {
            for (i, key) in keys.iter().enumerate() {
                if (round + i as u64).is_multiple_of(3) {
                    let got = ums::retrieve(&mut client, key).unwrap();
                    transcript.push(format!(
                        "retrieve {key:?} -> {:?} current={} ts={}",
                        got.data, got.is_current, got.timestamp.0
                    ));
                } else {
                    let payload = format!("r{round}-{i}").into_bytes();
                    let report = ums::insert(&mut client, key, payload).unwrap();
                    transcript.push(format!(
                        "insert {key:?} -> ts={} written={}",
                        report.timestamp.0, report.replicas_written
                    ));
                }
            }
        }
        // Final state probe: every replica of every key.
        for key in &keys {
            for hash in client.replication_ids() {
                let replica = client.get_replica(hash, key).unwrap();
                transcript.push(format!("replica {hash:?} {key:?} -> {replica:?}"));
            }
        }
        transcripts.push(transcript);
        cluster.shutdown();
        std::fs::remove_dir_all(root).unwrap();
    }
    let group = transcripts.pop().unwrap();
    let per_op = transcripts.pop().unwrap();
    assert_eq!(per_op.len(), group.len());
    for (a, b) in per_op.iter().zip(&group) {
        assert_eq!(a, b, "group commit diverged from the per-op path");
    }
}

/// The ISSUE 5 satellite: a gracefully departed peer no longer lingers as a
/// forwarder until cluster shutdown — after a bounded idle period its thread
/// is reaped, and the moved range keeps serving through the directory.
#[test]
fn departed_forwarder_is_reaped_after_idle_and_range_serves_via_directory() {
    let mut cluster = Cluster::spawn_with(
        ClusterConfig::new(6, 4, 34)
            .with_forwarder_reap_idle(std::time::Duration::from_millis(100)),
    );
    let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("doc-{i}"))).collect();
    let mut client = cluster.client();
    for key in &keys {
        ums::insert(&mut client, key, b"kept".to_vec()).unwrap();
    }

    let victim = cluster.peer_ids()[2];
    cluster.leave_peer(victim).unwrap();
    assert!(
        !cluster.peer_thread_finished(victim),
        "right after the leave the peer lingers as a forwarder"
    );

    // Bounded idle: the forwarder thread must exit on its own.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !cluster.peer_thread_finished(victim) {
        assert!(
            std::time::Instant::now() < deadline,
            "forwarder was never reaped"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // The reaped peer's range still serves via the directory: every key is
    // certified current and the direct hand-off left nothing to
    // re-initialize.
    let mut fresh = cluster.client();
    for key in &keys {
        let got = ums::retrieve(&mut fresh, key).unwrap();
        assert!(got.is_current, "{key:?} after the reap");
        assert_eq!(got.data.unwrap(), b"kept");
    }
    assert_eq!(fresh.indirect_initializations(), 0);

    // Lifecycle still behaves: the reaped peer restarts (its thread is
    // already gone; the restart respawns it) and the cluster shuts down.
    cluster.restart_peer(victim).unwrap();
    assert_eq!(cluster.live_peers(), 6);
    cluster.shutdown();
}

/// A stale forwarding rule whose target mailbox died must re-resolve through
/// the directory, not fall back to serving locally: here the departed peer's
/// forward target is hard-restarted (new mailbox), so the lingering
/// forwarder holds a rule to a dead channel. An in-flight request injected
/// at the forwarder must still reach the data — before the fix it was served
/// from the forwarder's own (pruned) store and returned nothing.
#[test]
fn retired_forward_rule_reroutes_through_directory_not_locally() {
    use crate::{Reply, Request};

    let root = fresh_storage_root("retired-rule-reroute");
    let config = ClusterConfig::new(6, 4, 35)
        .with_storage(ClusterStorage::new(&root))
        .with_forwarder_reap_idle(std::time::Duration::from_secs(30));
    let mut cluster = Cluster::spawn_with(config);
    let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("doc-{i}"))).collect();
    let mut client = cluster.client();
    for key in &keys {
        ums::insert(&mut client, key, b"v1".to_vec()).unwrap();
    }

    // A key/hash pair with a confirmed stored replica, to probe later.
    let probe_key = &keys[0];
    let probe_hash = client.replication_ids().next().unwrap();
    assert!(client.get_replica(probe_hash, probe_key).unwrap().is_some());

    let victim = cluster.peer_ids()[1];
    let leave = cluster.leave_peer(victim).unwrap();
    // Hard-restart the peer that absorbed the range: its mailbox is
    // replaced, so the forwarder's everything-rule now points at a dead
    // channel.
    cluster.restart_peer(leave.target).unwrap();

    // Inject requests at the lingering forwarder, as if they had been
    // routed there under the pre-leave directory view. The first send
    // retires the dead rule; the second must *still* re-resolve through the
    // directory — retirement must not leave the forwarder serving stale
    // requests from its own pruned store.
    let forwarder = cluster.peer_endpoint(victim).expect("forwarder endpoint");
    for attempt in 0..2 {
        let pending = forwarder
            .send(Request::GetReplica {
                hash: probe_hash,
                key: probe_key.clone(),
            })
            .expect("the forwarder is still alive inside the grace period");
        match pending
            .wait(std::time::Duration::from_secs(5))
            .expect("the re-routed request must be answered")
        {
            Reply::Replica(stored) => {
                let (payload, _) = stored.unwrap_or_else(|| {
                    panic!(
                        "attempt {attempt}: the directory re-route must reach the live \
                         holder of the replica, not the forwarder's pruned local store"
                    )
                });
                assert_eq!(payload, b"v1");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// A peer id not yet present in the cluster, derived from a fixed seed.
fn unused_peer_id(cluster: &Cluster, seed: u64) -> PeerId {
    let mut candidate = seed;
    while cluster.peer_ids().contains(&PeerId(candidate)) {
        candidate = candidate.wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    PeerId(candidate)
}

/// The ISSUE 4 acceptance test: under ongoing UMS traffic, one peer joins
/// and one peer gracefully leaves a storage-backed cluster; afterwards every
/// retrieve is certified current and a fresh client reports **zero**
/// indirect initializations — the direct algorithm of Section 4.2.1 was
/// taken for every moved counter.
#[test]
fn join_and_graceful_leave_under_traffic_stay_current_with_zero_indirect_inits() {
    use std::sync::atomic::AtomicBool;

    let root = fresh_storage_root("membership-acceptance");
    let config = ClusterConfig::new(8, 5, 21).with_storage(ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::EveryN(8)),
    ));
    let mut cluster = Cluster::spawn_with(config);
    let keys: Vec<Key> = (0..6).map(|i| Key::new(format!("doc-{i}"))).collect();
    {
        let mut client = cluster.client();
        for key in &keys {
            ums::insert(&mut client, key, b"v0".to_vec()).unwrap();
        }
    }

    let joiner = unused_peer_id(&cluster, 0x0123_4567_89ab_cdef);
    let victim = cluster.peer_ids()[3];
    let stop = AtomicBool::new(false);
    let (join_report, leave_report) = std::thread::scope(|scope| {
        for writer in 0..3 {
            let mut client = cluster.client();
            let keys = keys.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut round = 0u64;
                // relaxed: a late-observed stop flag only costs one extra
                // round; no data is published through it.
                while !stop.load(Ordering::Relaxed) {
                    for key in &keys {
                        let payload = format!("w{writer}-r{round}").into_bytes();
                        ums::insert(&mut client, key, payload).expect("insert under churn");
                    }
                    round += 1;
                }
            });
        }
        // Membership changes while the writers hammer the same keys.
        let join_report = cluster.join_peer(joiner).expect("join");
        let leave_report = cluster.leave_peer(victim).expect("leave");
        // relaxed: pure signal; scope join below is the synchronization.
        stop.store(true, Ordering::Relaxed);
        (join_report, leave_report)
    });

    assert_eq!(join_report.peer, joiner);
    assert_eq!(leave_report.peer, victim);
    assert_eq!(cluster.live_peers(), 8, "one in, one out");

    // Every subsequent retrieve is certified current, and none of them needs
    // the indirect initialization: the join and the leave both handed their
    // counters over directly.
    let mut fresh = cluster.client();
    for key in &keys {
        let got = ums::retrieve(&mut fresh, key).unwrap();
        assert!(got.is_current, "{key:?} must re-certify after churn");
        assert!(got.data.is_some());
    }
    assert_eq!(
        fresh.indirect_initializations(),
        0,
        "graceful membership changes must never force the indirect path"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// The direct-vs-crash contrast the paper's Section 4.2 draws, measured on
/// the same cluster shape: a graceful leave leaves zero indirect
/// initializations behind, a crash of the same peer forces at least one.
#[test]
fn graceful_leave_is_free_where_a_crash_pays_indirect_initializations() {
    let seed = 22;
    let keys: Vec<Key> = (0..5).map(|i| Key::new(format!("doc-{i}"))).collect();

    // Universe A: the timestamp responsible of doc-0 leaves gracefully.
    let mut cluster = Cluster::spawn(8, 4, seed);
    let mut client = cluster.client();
    for key in &keys {
        ums::insert(&mut client, key, b"v".to_vec()).unwrap();
    }
    let victim = cluster.timestamp_responsible(&keys[0]).unwrap();
    let report = cluster.leave_peer(victim).unwrap();
    assert!(
        report.counters_moved >= 1,
        "the victim was responsible for at least doc-0's counter"
    );
    let mut fresh = cluster.client();
    for key in &keys {
        assert!(ums::retrieve(&mut fresh, key).unwrap().is_current);
    }
    assert_eq!(fresh.indirect_initializations(), 0);
    cluster.shutdown();

    // Universe B: same cluster shape, same victim — but it crashes.
    let cluster = Cluster::spawn(8, 4, seed);
    let mut client = cluster.client();
    for key in &keys {
        ums::insert(&mut client, key, b"v".to_vec()).unwrap();
    }
    cluster.crash_peer(victim).unwrap();
    let mut fresh = cluster.client();
    for key in &keys {
        let got = ums::retrieve(&mut fresh, key).unwrap();
        assert!(got.data.is_some());
    }
    assert!(
        fresh.indirect_initializations() >= 1,
        "the crashed responsible's counters must re-initialize indirectly"
    );
    cluster.shutdown();
}

/// A join splits the successor's range: the joiner ends up responsible for
/// ring positions it took over, replicas moved with the range, and no
/// client ever observes a stale or uncertified value.
#[test]
fn join_moves_replicas_and_responsibility_to_the_new_peer() {
    let root = fresh_storage_root("join-moves-state");
    let config = ClusterConfig::new(6, 5, 23).with_storage(ClusterStorage::new(&root));
    let mut cluster = Cluster::spawn_with(config);
    let keys: Vec<Key> = (0..12).map(|i| Key::new(format!("doc-{i}"))).collect();
    let mut client = cluster.client();
    for key in &keys {
        ums::insert(&mut client, key, b"payload".to_vec()).unwrap();
    }

    let joiner = unused_peer_id(&cluster, 0x7777_0000_dead_0001);
    let report = cluster.join_peer(joiner).unwrap();
    assert_eq!(cluster.live_peers(), 7);
    assert!(
        report.replicas_moved > 0,
        "12 keys x 5 replicas spread over the ring: the moved range holds some"
    );
    // The ring now resolves the moved range to the joiner: its own id is
    // the inclusive end of the interval it took over.
    assert_eq!(report.range_end, joiner.0);
    let probe = Key::new("doc-0");
    let ts_holder = cluster.timestamp_responsible(&probe).unwrap();
    assert!(cluster.peer_ids().contains(&ts_holder));

    let mut fresh = cluster.client();
    for key in &keys {
        let got = ums::retrieve(&mut fresh, key).unwrap();
        assert!(got.is_current);
        assert_eq!(got.data.unwrap(), b"payload");
    }
    assert_eq!(fresh.indirect_initializations(), 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Crash mid-transfer, before the bundle ships (`CrashAfterExport`): the
/// transfer **rolls back**. The crashed source restarts from its journal
/// with every replica intact; the drained counters re-initialize indirectly
/// and currency is preserved. A retried join then completes.
#[test]
fn crash_after_export_rolls_back_and_a_retried_join_completes() {
    let root = fresh_storage_root("crash-after-export");
    let config = ClusterConfig::new(6, 4, 24).with_storage(ClusterStorage::new(&root));
    let mut cluster = Cluster::spawn_with(config);
    let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("doc-{i}"))).collect();
    let mut client = cluster.client();
    for key in &keys {
        ums::insert(&mut client, key, b"stable".to_vec()).unwrap();
    }

    let joiner = unused_peer_id(&cluster, 0x5151_5151_0000_0001);
    let error = cluster
        .join_peer_with_fault(joiner, HandoffFault::CrashAfterExport)
        .unwrap_err();
    assert!(matches!(error, MembershipError::TransferFailed(_)));
    assert_eq!(cluster.live_peers(), 5, "the source fail-stopped");
    assert!(
        !cluster.peer_ids().contains(&joiner),
        "the joiner was never registered"
    );

    // Restart the crashed source from its journal: rollback — every replica
    // is still there.
    let crashed = cluster
        .peer_ids()
        .into_iter()
        .find(|&peer| !cluster.peer_is_alive(peer))
        .expect("exactly one peer died");
    let report = cluster.restart_peer(crashed).unwrap();
    assert!(report.recovered_replicas > 0);
    assert_eq!(cluster.live_peers(), 6);

    // Currency is preserved across the rollback (indirect inits allowed —
    // that is the price of the crash, not a correctness loss).
    let mut fresh = cluster.client();
    for key in &keys {
        let got = ums::retrieve(&mut fresh, key).unwrap();
        assert!(got.is_current, "{key:?} after rollback");
        assert_eq!(got.data.unwrap(), b"stable");
    }

    // The retried join completes the membership change.
    let join = cluster.join_peer(joiner).unwrap();
    assert_eq!(join.peer, joiner);
    assert_eq!(cluster.live_peers(), 7);
    let mut after = cluster.client();
    for key in &keys {
        assert!(ums::retrieve(&mut after, key).unwrap().is_current);
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Crash mid-transfer, after the target journaled the bundle
/// (`CrashAfterInstall`): the transfer **completes from the journals**. The
/// joiner's directory already holds the installed state; restarting the
/// source and retrying the join converges, and every retrieve stays
/// current.
#[test]
fn crash_after_install_completes_from_the_journal_on_retry() {
    let root = fresh_storage_root("crash-after-install");
    let config = ClusterConfig::new(6, 4, 25).with_storage(ClusterStorage::new(&root));
    let mut cluster = Cluster::spawn_with(config);
    let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("doc-{i}"))).collect();
    let mut client = cluster.client();
    for key in &keys {
        ums::insert(&mut client, key, b"handed".to_vec()).unwrap();
    }

    let joiner = unused_peer_id(&cluster, 0x6262_6262_0000_0001);
    let error = cluster
        .join_peer_with_fault(joiner, HandoffFault::CrashAfterInstall)
        .unwrap_err();
    assert!(matches!(error, MembershipError::TransferFailed(_)));

    let crashed = cluster
        .peer_ids()
        .into_iter()
        .find(|&peer| !cluster.peer_is_alive(peer))
        .expect("exactly one peer died");
    cluster.restart_peer(crashed).unwrap();

    // Retry: the joiner's engine reopens over the journal the first attempt
    // wrote (replicas + counters recovered, counters seeded as floors), the
    // restarted source re-exports its still-present replicas, and the
    // hand-off commits.
    let join = cluster.join_peer(joiner).unwrap();
    assert_eq!(join.peer, joiner);
    assert_eq!(cluster.live_peers(), 7);

    let mut fresh = cluster.client();
    for key in &keys {
        let got = ums::retrieve(&mut fresh, key).unwrap();
        assert!(got.is_current, "{key:?} after completed retry");
        assert_eq!(got.data.unwrap(), b"handed");
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// The ISSUE 4 satellite closing the ROADMAP's currency-regression corner:
/// the restarted timestamp responsible seeds its indirect initialization
/// with the recovered durable counter, so even when **every** replica holder
/// of the key is down (the observation comes back empty) the next timestamp
/// is strictly larger than everything generated before the crash.
#[test]
fn restart_seeds_indirect_init_with_recovered_counter_floor() {
    let root = fresh_storage_root("recovery-floor");
    let config = ClusterConfig::new(10, 3, 26).with_storage(ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::Always),
    ));
    let mut cluster = Cluster::spawn_with(config);
    let key = Key::new("contested doc");
    let mut client = cluster.client();
    for i in 0..5u32 {
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
    }
    let before = ums::retrieve(&mut client, &key).unwrap();
    assert!(before.is_current);
    assert_eq!(before.timestamp.0, 5);

    // Crash and restart the timestamp responsible: its durable counter (5)
    // comes back as a recovery floor.
    let responsible = cluster.timestamp_responsible(&key).unwrap();
    cluster.crash_peer(responsible).unwrap();
    let report = cluster.restart_peer(responsible).unwrap();
    assert!(report.recovered_counters >= 1);

    // Now crash every replica holder of the key (leaving them down), so the
    // indirect observation finds nothing at all.
    for hash in client.replication_ids() {
        if let Some(holder) = cluster.replica_responsible(hash, &key) {
            if holder != responsible {
                let _ = cluster.crash_peer(holder);
            }
        }
    }

    // Without the floor this insert would restart the counter near zero and
    // re-issue timestamps 1..5, silently shadowing the pre-crash history.
    let next = ums::insert(&mut client, &key, b"post-crash".to_vec()).unwrap();
    assert!(
        next.timestamp > before.timestamp,
        "the recovered floor must keep timestamps monotonic, got {:?} after {:?}",
        next.timestamp,
        before.timestamp
    );

    let after = ums::retrieve(&mut client, &key).unwrap();
    assert!(after.is_current);
    assert_eq!(after.data.unwrap(), b"post-crash");
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Restarting a gracefully departed peer must terminate: its thread is
/// still running as a forwarder (not crashed), so the restart path has to
/// stop it explicitly rather than assume a dead thread.
#[test]
fn restart_after_graceful_leave_returns_and_rejoins() {
    let mut cluster = Cluster::spawn(5, 3, 28);
    let key = Key::new("doc");
    let mut client = cluster.client();
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();

    let victim = cluster.peer_ids()[1];
    cluster.leave_peer(victim).unwrap();
    assert_eq!(cluster.live_peers(), 4);

    // This used to deadlock: the forwarder thread never got a stop signal
    // and handle.join() waited forever.
    let report = cluster.restart_peer(victim).unwrap();
    assert_eq!(cluster.live_peers(), 5);
    // A departed peer's journal was pruned at hand-off; it rejoins
    // (essentially) empty and re-acquires state through later traffic.
    assert_eq!(report.recovered_counters, 0);

    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.data.is_some());
    ums::insert(&mut client, &key, b"v2".to_vec()).unwrap();
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"v2");
    cluster.shutdown();
}

/// A crash of a freshly joined peer must not black-hole its range: the
/// source's forwarding rule points at a dead mailbox, so it has to retire
/// the rule and serve the range itself (it is the live successor again).
#[test]
fn crash_of_joined_peer_retires_stale_forwarding_rules() {
    let mut cluster = Cluster::spawn(6, 5, 29);
    let keys: Vec<Key> = (0..10).map(|i| Key::new(format!("doc-{i}"))).collect();
    let mut client = cluster.client();
    for key in &keys {
        ums::insert(&mut client, key, b"v1".to_vec()).unwrap();
    }

    let joiner = unused_peer_id(&cluster, 0x9090_0000_0000_0007);
    let report = cluster.join_peer(joiner).unwrap();
    assert!(report.replicas_moved > 0, "the moved range holds replicas");
    cluster.crash_peer(joiner).unwrap();

    // Every key must still be retrievable promptly — requests for the
    // moved range route to the source again, whose stale forward-to-the-
    // dead-joiner rule must not swallow them. (Replicas that died with the
    // storage-less joiner are restored by the next update; surviving
    // replicas under other hash functions keep the data available.)
    let start = std::time::Instant::now();
    let mut fresh = cluster.client();
    for key in &keys {
        let got = ums::retrieve(&mut fresh, key).unwrap();
        assert!(got.data.is_some(), "{key:?} lost after joiner crash");
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "retrieves must not run into forwarding black holes, took {:?}",
        start.elapsed()
    );

    // Writes re-establish full replication and currency.
    for key in &keys {
        ums::insert(&mut fresh, key, b"v2".to_vec()).unwrap();
        let got = ums::retrieve(&mut fresh, key).unwrap();
        assert!(got.is_current);
        assert_eq!(got.data.unwrap(), b"v2");
    }
    cluster.shutdown();
}

/// Bootstrapping: joining peers one at a time grows the cluster from one
/// peer to many, and a graceful leave shrinks it back — the elastic-ring
/// lifecycle with no fixed deployment size.
#[test]
fn cluster_grows_and_shrinks_one_peer_at_a_time() {
    let mut cluster = Cluster::spawn(1, 3, 27);
    let key = Key::new("doc");
    let mut client = cluster.client();
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();

    let mut joined = Vec::new();
    for i in 0..4u64 {
        let id = unused_peer_id(&cluster, 0x4040_0000_0000_0000 + i * 0x0101_0101_0101);
        cluster.join_peer(id).unwrap();
        joined.push(id);
        let got = ums::retrieve(&mut client, &key).unwrap();
        assert!(got.is_current, "current after join {i}");
    }
    assert_eq!(cluster.live_peers(), 5);

    for id in joined {
        cluster.leave_peer(id).unwrap();
        let got = ums::retrieve(&mut client, &key).unwrap();
        assert!(got.is_current, "current after leave of {id:?}");
        assert_eq!(got.data.as_deref(), Some(b"v1".as_slice()));
    }
    assert_eq!(cluster.live_peers(), 1);
    cluster.shutdown();
}

/// A metrics scrape — over the wire via [`crate::ClusterClient::scrape_metrics`]
/// and in-process via [`Cluster::scrape`] — returns a parseable Prometheus
/// exposition carrying every roadmap-named instrument, and the stats
/// accessors read the very same atomics the registry exposes.
#[test]
fn metrics_scrape_exposes_roadmap_instruments() {
    let cluster = Cluster::spawn(3, 3, 91);
    let mut client = cluster.client();
    let key = Key::new("observed");
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();
    ums::retrieve(&mut client, &key).unwrap();

    let required = [
        crate::metrics::names::REQUESTS,
        crate::metrics::names::QUEUE_DEPTH,
        crate::metrics::names::DRAIN_BATCH,
        crate::metrics::names::SERVICE_NS,
        crate::metrics::names::DEDUP_APPLIED,
        crate::metrics::names::DEDUP_SUPPRESSED,
        crate::metrics::names::HANDOFF_STALL_NS,
        crate::metrics::names::INDIRECT_INITS,
        rdht_storage::metrics::names::WAL_SYNCS,
        rdht_membership::metrics::names::EXPORT_NS,
    ];
    for peer in cluster.peer_ids() {
        let exposition = client.scrape_metrics(peer).expect("scrape answers");
        let parsed = rdht_metrics::parse::parse(&exposition).expect("exposition parses");
        assert!(!parsed.samples.is_empty(), "peer {peer:?} exposes series");
        for name in required {
            assert!(
                exposition.contains(name),
                "peer {peer:?} exposition is missing {name}"
            );
        }
        // The in-process scrape reads the same registry.
        let local = cluster.scrape(peer).expect("metrics are on by default");
        for name in required {
            assert!(local.contains(name), "local scrape is missing {name}");
        }
    }

    // Some peer served the insert's writes. The client ships them as
    // batched `PutReplicas` groups (kind "puts"); constituents that had to
    // forward under churn would show up as kind "put" at their new owner.
    let total_puts: u64 = cluster
        .peer_ids()
        .into_iter()
        .filter_map(|peer| cluster.registry(peer))
        .map(|registry| {
            rdht_metrics::parse::parse(&rdht_metrics::encode(&registry))
                .expect("parses")
                .samples
                .iter()
                .filter(|sample| {
                    sample.name == crate::metrics::names::REQUESTS
                        && sample
                            .labels
                            .iter()
                            .any(|(k, v)| k == "kind" && (v == "put" || v == "puts"))
                })
                .map(|sample| sample.value as u64)
                .sum::<u64>()
        })
        .sum();
    assert!(total_puts >= 1, "the insert's put groups were counted");
    cluster.shutdown();
}

/// With metrics disabled the cluster answers scrapes with a typed error and
/// exposes no registries, and the workload still completes — the
/// instrumentation is strictly optional.
#[test]
fn metrics_can_be_disabled() {
    let cluster = Cluster::spawn_with(ClusterConfig::new(2, 3, 92).with_metrics(false));
    let mut client = cluster.client();
    let key = Key::new("dark");
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.is_current);
    for peer in cluster.peer_ids() {
        assert!(cluster.registry(peer).is_none());
        assert!(cluster.scrape(peer).is_none());
        let refused = client.scrape_metrics(peer);
        assert!(refused.is_err(), "scrape of a dark peer is refused");
    }
    cluster.shutdown();
}

/// The client's own counters are registry-grade: attach_metrics exposes the
/// same atomics the accessors read.
#[test]
fn client_counters_are_registry_handles() {
    let cluster = Cluster::spawn(2, 3, 93);
    let mut client = cluster.client();
    let registry = rdht_metrics::Registry::new();
    client.attach_metrics(&registry, &[("client", "t")]);
    let key = Key::new("counted");
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();
    assert!(client.messages() > 0);
    let exposition = rdht_metrics::encode(&registry);
    assert!(exposition.contains(&format!(
        "{}{{client=\"t\"}} {}",
        crate::metrics::names::CLIENT_MESSAGES,
        client.messages()
    )));
    cluster.shutdown();
}
