//! Tests of the threaded deployment: real concurrency, real failover, real
//! crash/restart recovery from on-disk peer state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rdht_core::{ums, UmsAccess};
use rdht_hashing::Key;
use rdht_storage::{FsyncPolicy, StorageOptions};

use crate::{Cluster, ClusterConfig, ClusterStorage};

static STORAGE_ROOT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh storage root for one test, removed up-front in case a previous
/// run left debris.
fn fresh_storage_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "rdht-net-test-{}-{}-{tag}",
        std::process::id(),
        STORAGE_ROOT_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn insert_and_retrieve_round_trip() {
    let cluster = Cluster::spawn(8, 5, 1);
    let mut client = cluster.client();
    let key = Key::new("doc");
    let report = ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();
    assert_eq!(report.replicas_written, 5);
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"v1");
    assert!(client.messages() > 0);
    cluster.shutdown();
}

#[test]
fn updates_supersede_older_values() {
    let cluster = Cluster::spawn(6, 4, 2);
    let mut client = cluster.client();
    let key = Key::new("doc");
    for i in 0..10u32 {
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
    }
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"v9");
    cluster.shutdown();
}

#[test]
fn retrieve_of_unknown_key_returns_nothing() {
    let cluster = Cluster::spawn(4, 3, 3);
    let mut client = cluster.client();
    let got = ums::retrieve(&mut client, &Key::new("nothing here")).unwrap();
    assert!(got.data.is_none());
    assert!(!got.is_current);
    cluster.shutdown();
}

#[test]
fn concurrent_writers_converge_to_single_latest_value() {
    // Many threads update the same key concurrently through their own
    // clients; afterwards, a retrieve returns one of the written values, it
    // is certified current, and its timestamp equals the last timestamp KTS
    // generated (the race resolved deterministically via timestamps).
    let cluster = Arc::new(Cluster::spawn(12, 6, 4));
    let key = Key::new("contended");
    let writers = 8;
    let updates_per_writer = 25;

    std::thread::scope(|scope| {
        for w in 0..writers {
            let cluster = Arc::clone(&cluster);
            let key = key.clone();
            scope.spawn(move || {
                let mut client = cluster.client();
                for i in 0..updates_per_writer {
                    let payload = format!("writer-{w}-update-{i}").into_bytes();
                    ums::insert(&mut client, &key, payload).unwrap();
                }
            });
        }
    });

    let mut client = cluster.client();
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(
        got.is_current,
        "after all writers finish the retrieve must be certified current"
    );
    let data = got.data.unwrap();
    assert!(String::from_utf8_lossy(&data).starts_with("writer-"));
    // The winning timestamp is the total number of generated timestamps.
    assert_eq!(got.timestamp.0, (writers * updates_per_writer) as u64);

    // Every replica slot now stores that same winning timestamp (mutual
    // consistency of replicas after the race).
    let last = got.timestamp;
    for hash in client.replication_ids() {
        let replica = client.get_replica(hash, &key).unwrap().unwrap();
        assert_eq!(replica.timestamp, last);
        assert_eq!(replica.data, data);
    }

    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}

#[test]
fn readers_and_writers_race_without_stale_certified_answers() {
    let cluster = Arc::new(Cluster::spawn(10, 5, 5));
    let key = Key::new("live feed");
    {
        let mut client = cluster.client();
        ums::insert(&mut client, &key, b"seed".to_vec()).unwrap();
    }

    std::thread::scope(|scope| {
        let writer_cluster = Arc::clone(&cluster);
        let writer_key = key.clone();
        scope.spawn(move || {
            let mut client = writer_cluster.client();
            for i in 0..50u32 {
                ums::insert(&mut client, &writer_key, format!("rev-{i}").into_bytes()).unwrap();
            }
        });
        for _ in 0..3 {
            let reader_cluster = Arc::clone(&cluster);
            let reader_key = key.clone();
            scope.spawn(move || {
                let mut client = reader_cluster.client();
                for _ in 0..30 {
                    let got = ums::retrieve(&mut client, &reader_key).unwrap();
                    // A certified answer must carry the timestamp KTS reported
                    // as the latest at that moment — never older.
                    if got.is_current {
                        assert_eq!(got.timestamp, got.last_timestamp);
                    }
                    assert!(got.data.is_some());
                }
            });
        }
    });

    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}

#[test]
fn crash_of_timestamp_responsible_triggers_indirect_initialization() {
    let cluster = Cluster::spawn(10, 6, 6);
    let key = Key::new("important doc");
    let mut client = cluster.client();
    for i in 0..5u32 {
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
    }
    let before = ums::retrieve(&mut client, &key).unwrap();
    assert!(before.is_current);

    // Kill the peer that generates timestamps for this key; its counters die
    // with it. The next responsible must re-initialize from the replicas.
    let responsible = cluster.timestamp_responsible(&key).unwrap();
    cluster.crash_peer(responsible);
    assert!(cluster.live_peers() < 10);

    let after = ums::retrieve(&mut client, &key).unwrap();
    assert_eq!(
        after.data.unwrap(),
        b"v4",
        "latest surviving value is still returned"
    );

    // Updates keep working and remain monotonic after the failover.
    let report = ums::insert(&mut client, &key, b"v5".to_vec()).unwrap();
    assert!(report.timestamp > before.timestamp);
    let finally = ums::retrieve(&mut client, &key).unwrap();
    assert!(finally.is_current);
    assert_eq!(finally.data.unwrap(), b"v5");
    cluster.shutdown();
}

#[test]
fn crash_of_replica_holders_degrades_availability_not_correctness() {
    let cluster = Cluster::spawn(12, 8, 7);
    let key = Key::new("doc");
    let mut client = cluster.client();
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();
    ums::insert(&mut client, &key, b"v2".to_vec()).unwrap();

    // Crash holders of the first few replicas.
    for hash in client.replication_ids().into_iter().take(4) {
        if let Some(peer) = cluster.replica_responsible(hash, &key) {
            cluster.crash_peer(peer);
        }
    }
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert_eq!(
        got.data.unwrap(),
        b"v2",
        "surviving replicas still serve the latest value"
    );
    cluster.shutdown();
}

/// The ISSUE 3 acceptance test: the KTS responsible is crashed (its thread
/// torn down), restarted from its storage directory, and a subsequent
/// retrieve is certified current with the pre-crash latest payload — with
/// the indirect-initialization path (not a counter left in memory)
/// observably taken.
#[test]
fn crash_restart_of_kts_responsible_recovers_indirectly() {
    let root = fresh_storage_root("kts-responsible");
    let config = ClusterConfig::new(8, 5, 11).with_storage(ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::Always),
    ));
    let mut cluster = Cluster::spawn_with(config);
    let key = Key::new("important doc");
    let mut client = cluster.client();
    for i in 0..5u32 {
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
    }
    let before = ums::retrieve(&mut client, &key).unwrap();
    assert!(before.is_current);

    // Kill the peer that generates timestamps for this key, then bring it
    // back from its on-disk directory.
    let responsible = cluster.timestamp_responsible(&key).unwrap();
    cluster.crash_peer(responsible);
    assert_eq!(cluster.live_peers(), 7);

    let report = cluster.restart_peer(responsible).unwrap();
    assert_eq!(cluster.live_peers(), 8);
    // The peer owns its old ring position again.
    assert_eq!(cluster.timestamp_responsible(&key), Some(responsible));
    // Its durable counter image for the key survived the crash…
    assert!(
        report.recovered_counters >= 1,
        "the timestamp responsible journaled at least this key's counter"
    );

    // …but the live VCS starts empty (Rule 1): the retrieve must take the
    // indirect-initialization path, observable as a NeedsInitialization
    // round-trip on a fresh client, and still certify the pre-crash value.
    let mut fresh = cluster.client();
    assert_eq!(fresh.indirect_initializations(), 0);
    let after = ums::retrieve(&mut fresh, &key).unwrap();
    assert_eq!(
        fresh.indirect_initializations(),
        1,
        "the restarted responsible had no in-memory counter"
    );
    assert!(after.is_current, "currency is re-certified after recovery");
    assert_eq!(after.data.unwrap(), b"v4", "pre-crash latest payload");
    assert_eq!(after.timestamp, before.timestamp);

    // Updates continue monotonically after the recovery.
    let next = ums::insert(&mut fresh, &key, b"v5".to_vec()).unwrap();
    assert!(next.timestamp > before.timestamp);
    let finally = ums::retrieve(&mut fresh, &key).unwrap();
    assert!(finally.is_current);
    assert_eq!(finally.data.unwrap(), b"v5");

    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Stronger durability claim: crash *every* peer (all in-memory state gone),
/// restart them all from disk, and every key still retrieves current. The
/// data can only have come from the journals.
#[test]
fn whole_cluster_crash_restart_serves_current_data_from_disk() {
    let root = fresh_storage_root("whole-cluster");
    let config = ClusterConfig::new(6, 4, 12).with_storage(ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::EveryN(4)),
    ));
    let mut cluster = Cluster::spawn_with(config);
    let keys: Vec<Key> = (0..8).map(|i| Key::new(format!("doc-{i}"))).collect();
    {
        let mut client = cluster.client();
        for (i, key) in keys.iter().enumerate() {
            for version in 0..=i {
                let payload = format!("doc-{i}-v{version}").into_bytes();
                ums::insert(&mut client, key, payload).unwrap();
            }
        }
    }

    let peers = cluster.peer_ids();
    for &peer in &peers {
        cluster.crash_peer(peer);
    }
    assert_eq!(cluster.live_peers(), 0);
    let mut recovered_replicas = 0;
    for &peer in &peers {
        let report = cluster.restart_peer(peer).unwrap();
        recovered_replicas += report.recovered_replicas;
    }
    assert_eq!(cluster.live_peers(), peers.len());
    // Every (key, hash) replica written must be back: 8 keys × |Hr| = 4.
    // (FsyncPolicy::EveryN leaves at most a tail unsynced on a *power*
    // failure; a thread crash loses nothing already written to the fs.)
    assert_eq!(recovered_replicas, keys.len() * 4);

    let mut client = cluster.client();
    for (i, key) in keys.iter().enumerate() {
        let got = ums::retrieve(&mut client, key).unwrap();
        assert!(got.is_current, "doc-{i} must re-certify from durable state");
        assert_eq!(got.data.unwrap(), format!("doc-{i}-v{i}").into_bytes());
    }
    assert!(
        client.indirect_initializations() >= keys.len() as u64,
        "every key's counter had to be re-initialized indirectly"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Restarting a peer of a storage-less cluster simply rejoins it empty —
/// the volatile analogue of a rejoin after failure.
#[test]
fn restart_without_storage_rejoins_empty() {
    let mut cluster = Cluster::spawn(5, 3, 13);
    let key = Key::new("doc");
    let mut client = cluster.client();
    ums::insert(&mut client, &key, b"v1".to_vec()).unwrap();

    let victim = cluster.timestamp_responsible(&key).unwrap();
    cluster.crash_peer(victim);
    let report = cluster.restart_peer(victim).unwrap();
    assert_eq!(report.recovered_replicas, 0);
    assert_eq!(report.recovered_counters, 0);
    assert_eq!(cluster.live_peers(), 5);

    // The surviving replicas still certify the value through indirect init.
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert_eq!(got.data.unwrap(), b"v1");
    cluster.shutdown();
}

/// Restarting an unknown peer id is a no-op.
#[test]
fn restart_of_unknown_peer_returns_none() {
    let mut cluster = Cluster::spawn(3, 3, 14);
    let bogus = crate::PeerId(0xdead_beef);
    assert!(!cluster.peer_ids().contains(&bogus));
    assert_eq!(cluster.restart_peer(bogus), None);
    cluster.shutdown();
}

/// A durable peer's journal survives a *graceful* shutdown too: a second
/// cluster spawned over the same root serves the data.
#[test]
fn cluster_respawn_over_same_root_keeps_data() {
    let root = fresh_storage_root("respawn");
    let storage = ClusterStorage::with_options(
        &root,
        StorageOptions::with_fsync(FsyncPolicy::Never), // Shutdown syncs
    );
    let key = Key::new("persistent doc");
    {
        let cluster =
            Cluster::spawn_with(ClusterConfig::new(4, 3, 15).with_storage(storage.clone()));
        let mut client = cluster.client();
        ums::insert(&mut client, &key, b"kept".to_vec()).unwrap();
        cluster.shutdown();
    }
    {
        // Same seed -> same peer ids -> same peer directories.
        let cluster = Cluster::spawn_with(ClusterConfig::new(4, 3, 15).with_storage(storage));
        let mut client = cluster.client();
        let got = ums::retrieve(&mut client, &key).unwrap();
        assert!(got.is_current);
        assert_eq!(got.data.unwrap(), b"kept");
        cluster.shutdown();
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// The ISSUE 3 satellite: the artificial message delay must not apply to
/// shutdown drains — a delayed cluster shuts down promptly.
#[test]
fn delayed_cluster_shuts_down_promptly() {
    let mut config = ClusterConfig::new(8, 3, 16);
    config.message_delay = std::time::Duration::from_millis(150);
    let cluster = Cluster::spawn_with(config);
    let start = std::time::Instant::now();
    cluster.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_millis(100),
        "shutdown must skip the artificial delay, took {elapsed:?}"
    );
}

#[test]
fn artificial_delay_slows_operations_down() {
    let fast = Cluster::spawn(4, 3, 8);
    let mut config = ClusterConfig::new(4, 3, 8);
    config.message_delay = std::time::Duration::from_millis(2);
    let slow = Cluster::spawn_with(config);

    let key = Key::new("doc");
    let mut fast_client = fast.client();
    let mut slow_client = slow.client();

    let t0 = std::time::Instant::now();
    ums::insert(&mut fast_client, &key, b"v".to_vec()).unwrap();
    let fast_elapsed = t0.elapsed();

    let t1 = std::time::Instant::now();
    ums::insert(&mut slow_client, &key, b"v".to_vec()).unwrap();
    let slow_elapsed = t1.elapsed();

    assert!(slow_elapsed > fast_elapsed);
    fast.shutdown();
    slow.shutdown();
}

#[test]
fn peer_ids_are_stable_and_sorted() {
    let cluster = Cluster::spawn(16, 4, 9);
    let ids = cluster.peer_ids();
    assert_eq!(ids.len(), 16);
    assert!(ids.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(cluster.live_peers(), 16);
    cluster.shutdown();
}

#[test]
#[should_panic(expected = "at least one peer")]
fn empty_cluster_is_rejected() {
    let _ = Cluster::spawn(0, 3, 10);
}
