//! The wire codec: deterministic, versioned, length-framed binary
//! encoding of [`Request`]/[`Reply`] envelopes.
//!
//! # Frame layout
//!
//! ```text
//! frame   := len: u32 LE | payload               (len = payload byte count)
//! payload := version: u8                         (WIRE_VERSION, currently 4)
//!            kind: u8                            (0 = request, 1 = reply)
//!            request_id: u64 LE                  (matches replies to requests)
//!            trace: Option<TraceContext>         (requests only, v4+ only)
//!            body                                (tagged per message variant)
//! ```
//!
//! Primitive encodings, all little-endian and length-prefixed:
//!
//! * `u8`/`u32`/`u64` — fixed-width LE;
//! * `bytes` — `u32 LE` length, then the raw bytes;
//! * `string` — `bytes`, validated UTF-8 on decode;
//! * `Vec<T>` — `u32 LE` element count, then each element;
//! * `Option<T>` — `u8` tag (0 = none, 1 = some), then the value;
//! * enums — `u8` tag, then the variant's fields in declaration order.
//!
//! Every frame is self-delimiting (the length prefix) and self-describing
//! (version + kind + body tag), so a reader can reject garbage *typed*:
//! an oversized length prefix, an unknown version, an unknown tag, a
//! truncated body or trailing bytes each map to a distinct [`WireError`]
//! instead of a panic. Decoding is exhaustive — every byte of the payload
//! must be consumed.

use std::fmt;
use std::io::{self, Read};

use rdht_core::Timestamp;
use rdht_hashing::{HashId, Key};
use rdht_membership::HandoffBundle;
use rdht_metrics::{RequestTree, TraceContext};
use rdht_storage::StoredReplica;

use crate::cluster::PeerId;
use crate::message::{HandoffFault, HandoffKind, OpId, Reply, Request};

/// Version byte every frame starts with. Bumped on any incompatible layout
/// change; decoders reject frames from versions outside
/// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] with
/// [`WireError::UnsupportedVersion`].
///
/// Version 2 added the optional [`OpId`] dedup metadata to the mutating
/// request variants. Version 3 added the metrics scrape exchange
/// ([`Request::Metrics`], request tag 8 / [`Reply::Metrics`], reply tag 9).
/// Version 4 added the optional [`TraceContext`] to the request envelope
/// header and the slow-request scrape ([`Request::SlowRequests`], request
/// tag 9 / [`Reply::SlowRequests`], reply tag 10). v4 is a pure extension:
/// the bodies of v2/v3 frames decode unchanged (the trace field is simply
/// absent), so old peers interoperate — they just carry no trace.
pub const WIRE_VERSION: u8 = 4;

/// Oldest version this decoder still accepts. Frames from
/// `MIN_WIRE_VERSION..WIRE_VERSION` decode with the trace context absent.
pub const MIN_WIRE_VERSION: u8 = 2;

/// Upper bound on a frame's payload length (64 MiB). A length prefix above
/// this is rejected *before* any allocation — a garbage or hostile prefix
/// must not make the peer reserve gigabytes.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const KIND_REQUEST: u8 = 0;
const KIND_REPLY: u8 = 1;

/// A typed wire-codec failure. Every decode error is one of these — the
/// codec never panics on garbage input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The advertised payload length.
        len: u32,
        /// The configured maximum.
        max: u32,
    },
    /// The payload ended before the announced structure was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The frame's version byte is outside
    /// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// An enum tag byte (message kind, variant tag, option/bool tag) has no
    /// defined meaning.
    UnknownTag {
        /// The enum the tag was decoded for.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field does not hold valid UTF-8.
    InvalidUtf8 {
        /// The field being decoded.
        context: &'static str,
    },
    /// The payload holds more bytes than its structure accounts for.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            WireError::Truncated { context } => {
                write!(f, "payload truncated while decoding {context}")
            }
            WireError::UnsupportedVersion(version) => {
                write!(
                    f,
                    "unsupported wire version {version} \
                     (expected {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag} for {context}")
            }
            WireError::InvalidUtf8 { context } => {
                write!(f, "invalid UTF-8 in {context}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete message")
            }
        }
    }
}

impl WireError {
    /// The variant's name — the stable, low-cardinality label structured
    /// log events carry alongside the full rendered message.
    pub fn variant(&self) -> &'static str {
        match self {
            WireError::FrameTooLarge { .. } => "FrameTooLarge",
            WireError::Truncated { .. } => "Truncated",
            WireError::UnsupportedVersion(_) => "UnsupportedVersion",
            WireError::UnknownTag { .. } => "UnknownTag",
            WireError::InvalidUtf8 { .. } => "InvalidUtf8",
            WireError::TrailingBytes { .. } => "TrailingBytes",
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded frame payload: either direction of the protocol, with the
/// request id that matches replies to requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Envelope {
    /// A client-to-peer (or peer-to-peer) request.
    Request {
        /// Id the eventual reply must echo.
        request_id: u64,
        /// The request itself.
        request: Request,
        /// Distributed-tracing context propagated alongside the request;
        /// `None` when the call is unsampled or the frame predates v4.
        trace: Option<TraceContext>,
    },
    /// A peer's answer to the request with the same id.
    Reply {
        /// Id of the request being answered.
        request_id: u64,
        /// The reply itself.
        reply: Reply,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(
        out,
        u32::try_from(bytes.len()).expect("byte field fits in u32"),
    );
    out.extend_from_slice(bytes);
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    put_u8(out, u8::from(value));
}

fn put_key(out: &mut Vec<u8>, key: &Key) {
    put_bytes(out, key.as_bytes());
}

fn put_counters(out: &mut Vec<u8>, counters: &[(Key, Timestamp)]) {
    put_u32(out, counters.len() as u32);
    for (key, stamp) in counters {
        put_key(out, key);
        put_u64(out, stamp.0);
    }
}

fn put_op(out: &mut Vec<u8>, op: &Option<OpId>) {
    match op {
        None => put_u8(out, 0),
        Some(op) => {
            put_u8(out, 1);
            put_u64(out, op.client);
            put_u64(out, op.seq);
        }
    }
}

fn put_trace(out: &mut Vec<u8>, trace: &Option<TraceContext>) {
    match trace {
        None => put_u8(out, 0),
        Some(context) => {
            put_u8(out, 1);
            put_u64(out, context.trace_id);
            put_u64(out, context.parent_span);
            put_u8(out, context.flags);
        }
    }
}

fn put_trees(out: &mut Vec<u8>, trees: &[RequestTree]) {
    put_u32(out, trees.len() as u32);
    for tree in trees {
        put_u64(out, tree.trace_id);
        put_bytes(out, tree.name.as_bytes());
        put_u64(out, tree.total_us);
        put_u32(out, tree.phases.len() as u32);
        for (name, dur_us) in &tree.phases {
            put_bytes(out, name.as_bytes());
            put_u64(out, *dur_us);
        }
    }
}

fn put_bundle(out: &mut Vec<u8>, bundle: &HandoffBundle) {
    put_u32(out, bundle.replicas.len() as u32);
    for (hash, key, replica) in &bundle.replicas {
        put_u32(out, hash.0);
        put_key(out, key);
        put_bytes(out, &replica.payload);
        put_u64(out, replica.stamp.0);
        put_u64(out, replica.position);
    }
    put_counters(out, &bundle.counters);
    put_counters(out, &bundle.floors);
}

fn put_request_body(out: &mut Vec<u8>, request: &Request) {
    match request {
        Request::PutReplica {
            op,
            hash,
            key,
            payload,
            timestamp,
        } => {
            put_u8(out, 0);
            put_op(out, op);
            put_u32(out, hash.0);
            put_key(out, key);
            put_bytes(out, payload);
            put_u64(out, timestamp.0);
        }
        Request::PutReplicas {
            op,
            hashes,
            key,
            payload,
            timestamp,
        } => {
            put_u8(out, 1);
            put_op(out, op);
            put_u32(out, hashes.len() as u32);
            for hash in hashes {
                put_u32(out, hash.0);
            }
            put_key(out, key);
            put_bytes(out, payload);
            put_u64(out, timestamp.0);
        }
        Request::GetReplica { hash, key } => {
            put_u8(out, 2);
            put_u32(out, hash.0);
            put_key(out, key);
        }
        Request::Timestamp {
            op,
            key,
            generate,
            observation_hint,
        } => {
            put_u8(out, 3);
            put_op(out, op);
            put_key(out, key);
            put_bool(out, *generate);
            match observation_hint {
                None => put_u8(out, 0),
                Some(hint) => {
                    put_u8(out, 1);
                    put_u64(out, hint.0);
                }
            }
        }
        Request::HandoffRange {
            op,
            start,
            end,
            target_id,
            kind,
            fault,
        } => {
            put_u8(out, 4);
            put_op(out, op);
            put_u64(out, *start);
            put_u64(out, *end);
            put_u64(out, target_id.0);
            put_u8(
                out,
                match kind {
                    HandoffKind::Join => 0,
                    HandoffKind::Leave => 1,
                },
            );
            put_u8(
                out,
                match fault {
                    None => 0,
                    Some(HandoffFault::CrashAfterExport) => 1,
                    Some(HandoffFault::CrashAfterInstall) => 2,
                },
            );
        }
        Request::InstallState {
            op,
            start,
            end,
            bundle,
        } => {
            put_u8(out, 5);
            put_op(out, op);
            put_u64(out, *start);
            put_u64(out, *end);
            put_bundle(out, bundle);
        }
        Request::Shutdown => put_u8(out, 6),
        Request::Crash => put_u8(out, 7),
        Request::Metrics => put_u8(out, 8),
        Request::SlowRequests { k } => {
            put_u8(out, 9);
            put_u32(out, *k);
        }
    }
}

fn put_reply_body(out: &mut Vec<u8>, reply: &Reply) {
    match reply {
        Reply::PutAck => put_u8(out, 0),
        Reply::PutsAck { written, failed } => {
            put_u8(out, 1);
            put_u32(out, *written);
            put_u32(out, *failed);
        }
        Reply::Replica(stored) => {
            put_u8(out, 2);
            match stored {
                None => put_u8(out, 0),
                Some((payload, timestamp)) => {
                    put_u8(out, 1);
                    put_bytes(out, payload);
                    put_u64(out, timestamp.0);
                }
            }
        }
        Reply::Timestamp(ts) => {
            put_u8(out, 3);
            put_u64(out, ts.0);
        }
        Reply::NeedsInitialization => put_u8(out, 4),
        Reply::HandoffComplete {
            replicas_moved,
            counters_moved,
        } => {
            put_u8(out, 5);
            put_u64(out, *replicas_moved as u64);
            put_u64(out, *counters_moved as u64);
        }
        Reply::HandoffFailed { reason } => {
            put_u8(out, 6);
            put_bytes(out, reason.as_bytes());
        }
        Reply::InstallAck {
            replicas_installed,
            counters_received,
        } => {
            put_u8(out, 7);
            put_u64(out, *replicas_installed as u64);
            put_u64(out, *counters_received as u64);
        }
        Reply::Error { reason } => {
            put_u8(out, 8);
            put_bytes(out, reason.as_bytes());
        }
        Reply::Metrics(exposition) => {
            put_u8(out, 9);
            put_bytes(out, exposition.as_bytes());
        }
        Reply::SlowRequests(trees) => {
            put_u8(out, 10);
            put_trees(out, trees);
        }
    }
}

fn encode_frame(kind: u8, request_id: u64, body: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    // Placeholder for the length prefix, patched below.
    out.extend_from_slice(&[0u8; 4]);
    put_u8(&mut out, WIRE_VERSION);
    put_u8(&mut out, kind);
    put_u64(&mut out, request_id);
    body(&mut out);
    let payload_len = u32::try_from(out.len() - 4).expect("frame payload fits in u32");
    assert!(
        payload_len <= MAX_FRAME_LEN,
        "encoded frame of {payload_len} bytes exceeds MAX_FRAME_LEN"
    );
    out[..4].copy_from_slice(&payload_len.to_le_bytes());
    out
}

/// Encodes a request envelope into a complete frame (length prefix
/// included), ready to be written to a stream. The optional trace context
/// rides in the v4 envelope header, ahead of the body — `None` costs one
/// tag byte.
pub fn encode_request(request_id: u64, request: &Request, trace: Option<TraceContext>) -> Vec<u8> {
    encode_frame(KIND_REQUEST, request_id, |out| {
        put_trace(out, &trace);
        put_request_body(out, request)
    })
}

/// Encodes a reply envelope into a complete frame (length prefix included).
pub fn encode_reply(request_id: u64, reply: &Reply) -> Vec<u8> {
    encode_frame(KIND_REPLY, request_id, |out| put_reply_body(out, reply))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over a frame payload; every read is bounds-checked and errors are
/// typed, never panicking on garbage.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(WireError::Truncated { context })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let bytes = self.take(4, context)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let bytes = self.take(8, context)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.u32(context)? as usize;
        self.take(len, context)
    }

    fn string(&mut self, context: &'static str) -> Result<String, WireError> {
        let bytes = self.bytes(context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8 { context })
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, WireError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { context, tag }),
        }
    }

    fn key(&mut self, context: &'static str) -> Result<Key, WireError> {
        Ok(Key::from_bytes(self.bytes(context)?.to_vec()))
    }

    /// Element count of a length-prefixed vector, sanity-bounded by the
    /// remaining payload so a garbage count cannot drive a huge
    /// pre-allocation.
    fn count(&mut self, min_element: usize, context: &'static str) -> Result<usize, WireError> {
        let count = self.u32(context)? as usize;
        let remaining = self.bytes.len() - self.at;
        if count.saturating_mul(min_element.max(1)) > remaining {
            return Err(WireError::Truncated { context });
        }
        Ok(count)
    }

    fn op(&mut self, context: &'static str) -> Result<Option<OpId>, WireError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(OpId {
                client: self.u64(context)?,
                seq: self.u64(context)?,
            })),
            tag => Err(WireError::UnknownTag { context, tag }),
        }
    }

    fn trace(&mut self, context: &'static str) -> Result<Option<TraceContext>, WireError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(TraceContext {
                trace_id: self.u64(context)?,
                parent_span: self.u64(context)?,
                flags: self.u8(context)?,
            })),
            tag => Err(WireError::UnknownTag { context, tag }),
        }
    }

    fn trees(&mut self) -> Result<Vec<RequestTree>, WireError> {
        let count = self.count(8 + 4 + 8 + 4, "slow-request trees")?;
        let mut trees = Vec::with_capacity(count);
        for _ in 0..count {
            let trace_id = self.u64("tree trace id")?;
            let name = self.string("tree name")?;
            let total_us = self.u64("tree total")?;
            let phase_count = self.count(4 + 8, "tree phases")?;
            let mut phases = Vec::with_capacity(phase_count);
            for _ in 0..phase_count {
                let phase = self.string("phase name")?;
                let dur_us = self.u64("phase duration")?;
                phases.push((phase, dur_us));
            }
            trees.push(RequestTree {
                trace_id,
                name,
                total_us,
                phases,
            });
        }
        Ok(trees)
    }

    fn counters(&mut self, context: &'static str) -> Result<Vec<(Key, Timestamp)>, WireError> {
        let count = self.count(4 + 8, context)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let key = self.key(context)?;
            let stamp = Timestamp(self.u64(context)?);
            out.push((key, stamp));
        }
        Ok(out)
    }

    fn bundle(&mut self) -> Result<HandoffBundle, WireError> {
        let count = self.count(4 + 4 + 4 + 8 + 8, "bundle replicas")?;
        let mut replicas = Vec::with_capacity(count);
        for _ in 0..count {
            let hash = HashId(self.u32("bundle replica hash")?);
            let key = self.key("bundle replica key")?;
            let payload = self.bytes("bundle replica payload")?.to_vec();
            let stamp = Timestamp(self.u64("bundle replica stamp")?);
            let position = self.u64("bundle replica position")?;
            replicas.push((
                hash,
                key,
                StoredReplica {
                    payload,
                    stamp,
                    position,
                },
            ));
        }
        let counters = self.counters("bundle counters")?;
        let floors = self.counters("bundle floors")?;
        Ok(HandoffBundle {
            replicas,
            counters,
            floors,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        let remaining = self.bytes.len() - self.at;
        if remaining != 0 {
            return Err(WireError::TrailingBytes { remaining });
        }
        Ok(())
    }
}

fn decode_request_body(cursor: &mut Cursor<'_>) -> Result<Request, WireError> {
    match cursor.u8("request tag")? {
        0 => Ok(Request::PutReplica {
            op: cursor.op("put op id")?,
            hash: HashId(cursor.u32("put hash")?),
            key: cursor.key("put key")?,
            payload: cursor.bytes("put payload")?.to_vec(),
            timestamp: Timestamp(cursor.u64("put timestamp")?),
        }),
        1 => {
            let op = cursor.op("puts op id")?;
            let count = cursor.count(4, "puts hashes")?;
            let mut hashes = Vec::with_capacity(count);
            for _ in 0..count {
                hashes.push(HashId(cursor.u32("puts hash")?));
            }
            Ok(Request::PutReplicas {
                op,
                hashes,
                key: cursor.key("puts key")?,
                payload: cursor.bytes("puts payload")?.to_vec(),
                timestamp: Timestamp(cursor.u64("puts timestamp")?),
            })
        }
        2 => Ok(Request::GetReplica {
            hash: HashId(cursor.u32("get hash")?),
            key: cursor.key("get key")?,
        }),
        3 => {
            let op = cursor.op("timestamp op id")?;
            let key = cursor.key("timestamp key")?;
            let generate = cursor.bool("timestamp generate flag")?;
            let observation_hint = match cursor.u8("timestamp hint tag")? {
                0 => None,
                1 => Some(Timestamp(cursor.u64("timestamp hint")?)),
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "timestamp hint tag",
                        tag,
                    })
                }
            };
            Ok(Request::Timestamp {
                op,
                key,
                generate,
                observation_hint,
            })
        }
        4 => {
            let op = cursor.op("hand-off op id")?;
            let start = cursor.u64("hand-off start")?;
            let end = cursor.u64("hand-off end")?;
            let target_id = PeerId(cursor.u64("hand-off target")?);
            let kind = match cursor.u8("hand-off kind")? {
                0 => HandoffKind::Join,
                1 => HandoffKind::Leave,
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "hand-off kind",
                        tag,
                    })
                }
            };
            let fault = match cursor.u8("hand-off fault")? {
                0 => None,
                1 => Some(HandoffFault::CrashAfterExport),
                2 => Some(HandoffFault::CrashAfterInstall),
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "hand-off fault",
                        tag,
                    })
                }
            };
            Ok(Request::HandoffRange {
                op,
                start,
                end,
                target_id,
                kind,
                fault,
            })
        }
        5 => Ok(Request::InstallState {
            op: cursor.op("install op id")?,
            start: cursor.u64("install start")?,
            end: cursor.u64("install end")?,
            bundle: cursor.bundle()?,
        }),
        6 => Ok(Request::Shutdown),
        7 => Ok(Request::Crash),
        8 => Ok(Request::Metrics),
        9 => Ok(Request::SlowRequests {
            k: cursor.u32("slow-requests k")?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "request tag",
            tag,
        }),
    }
}

fn decode_reply_body(cursor: &mut Cursor<'_>) -> Result<Reply, WireError> {
    match cursor.u8("reply tag")? {
        0 => Ok(Reply::PutAck),
        1 => Ok(Reply::PutsAck {
            written: cursor.u32("puts-ack written")?,
            failed: cursor.u32("puts-ack failed")?,
        }),
        2 => {
            let stored = match cursor.u8("replica option tag")? {
                0 => None,
                1 => {
                    let payload = cursor.bytes("replica payload")?.to_vec();
                    let timestamp = Timestamp(cursor.u64("replica timestamp")?);
                    Some((payload, timestamp))
                }
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "replica option tag",
                        tag,
                    })
                }
            };
            Ok(Reply::Replica(stored))
        }
        3 => Ok(Reply::Timestamp(Timestamp(cursor.u64("timestamp")?))),
        4 => Ok(Reply::NeedsInitialization),
        5 => Ok(Reply::HandoffComplete {
            replicas_moved: cursor.u64("hand-off replicas moved")? as usize,
            counters_moved: cursor.u64("hand-off counters moved")? as usize,
        }),
        6 => Ok(Reply::HandoffFailed {
            reason: cursor.string("hand-off failure reason")?,
        }),
        7 => Ok(Reply::InstallAck {
            replicas_installed: cursor.u64("install replicas")? as usize,
            counters_received: cursor.u64("install counters")? as usize,
        }),
        8 => Ok(Reply::Error {
            reason: cursor.string("error reason")?,
        }),
        9 => Ok(Reply::Metrics(cursor.string("metrics exposition")?)),
        10 => Ok(Reply::SlowRequests(cursor.trees()?)),
        tag => Err(WireError::UnknownTag {
            context: "reply tag",
            tag,
        }),
    }
}

/// Decodes a frame *payload* (the bytes after the length prefix) into an
/// envelope. Every byte must be accounted for; all failures are typed.
///
/// Versions [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] are accepted: a v2 or
/// v3 request decodes with `trace: None` (the field did not exist yet), so
/// a v4 peer interoperates with old senders.
pub fn decode_payload(payload: &[u8]) -> Result<Envelope, WireError> {
    let mut cursor = Cursor::new(payload);
    let version = cursor.u8("version")?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = cursor.u8("message kind")?;
    let request_id = cursor.u64("request id")?;
    let envelope = match kind {
        KIND_REQUEST => {
            let trace = if version >= 4 {
                cursor.trace("trace context")?
            } else {
                None
            };
            Envelope::Request {
                request_id,
                request: decode_request_body(&mut cursor)?,
                trace,
            }
        }
        KIND_REPLY => Envelope::Reply {
            request_id,
            reply: decode_reply_body(&mut cursor)?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                context: "message kind",
                tag,
            })
        }
    };
    cursor.finish()?;
    Ok(envelope)
}

/// A failure while reading a frame off a byte stream: either the transport
/// failed (I/O) or the bytes were not a valid frame (typed wire error).
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed or closed mid-frame.
    Io(io::Error),
    /// The bytes read do not form a valid frame.
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(error) => write!(f, "frame I/O error: {error}"),
            FrameError::Wire(error) => write!(f, "frame decode error: {error}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one length-prefixed frame payload from `reader`.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary); EOF inside a frame is an error. An oversized length prefix is
/// rejected before any allocation.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None), // clean EOF
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            Err(error) => return Err(FrameError::Io(error)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Wire(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(Some(payload))
}
