//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset used by `crates/bench`: [`Criterion`],
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups,
//! [`BenchmarkId`] and [`black_box`]. Measurement is intentionally simple —
//! a timed loop reporting mean wall-clock time per iteration — but the
//! harness shape (and therefore `cargo bench --no-run` compile coverage)
//! matches the real crate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting a
/// benchmarked computation.
pub use std::hint::black_box;

/// Top-level benchmark driver: holds configuration and runs benchmarks.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A set of related benchmarks reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            &mut routine,
        );
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut |b| {
            routine(b, input)
        });
        self
    }

    /// Finishes the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark: a function name plus the
/// parameter value it ran with.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// The per-benchmark timing handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

/// How batched inputs are sized in [`Bencher::iter_batched`]; only a hint in
/// this shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup output per iteration.
    PerIteration,
}

impl Bencher {
    /// Times `routine`, running it once per sample after a short warm-up.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iterations = self.sample_size as u64;
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iterations = self.sample_size as u64;
    }
}

fn run_one<F>(label: &str, sample_size: usize, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        total: Duration::ZERO,
        iterations: 0,
    };
    routine(&mut bencher);
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.total / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
    };
    println!(
        "{label:<50} time: [{per_iter:?}/iter over {} iters]",
        bencher.iterations
    );
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("identity", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn harness_shape_runs() {
        benches();
    }
}
