//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard-library locks behind `parking_lot`'s poison-free API:
//! `read()` / `write()` / `lock()` return guards directly instead of a
//! `Result`. A poisoned lock (a panic while holding the guard) is recovered
//! rather than propagated, matching `parking_lot` semantics closely enough
//! for this workspace.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Re-exported guard types (identical to the standard library's).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free accessor.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let mutex = Mutex::new(vec![1]);
        mutex.lock().push(2);
        assert_eq!(mutex.into_inner(), vec![1, 2]);
    }
}
