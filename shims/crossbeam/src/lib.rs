//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the [`channel`] module is provided, implemented over
//! `std::sync::mpsc`. The one semantic difference from real crossbeam
//! channels — `std` receivers are single-consumer — does not matter here:
//! every receiver in this workspace is owned by exactly one thread.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer channels with bounded and unbounded flavours.

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent message.
    pub use std::sync::mpsc::SendError;
    /// Errors returned by the receiving side.
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel. Cloneable; a send on a full bounded
    /// channel blocks, matching crossbeam semantics.
    pub struct Sender<T> {
        kind: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                kind: self.kind.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `message`, blocking while a bounded channel is full. Fails
        /// only when the receiver has been dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            match &self.kind {
                SenderKind::Unbounded(tx) => tx.send(message),
                SenderKind::Bounded(tx) => tx.send(message),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking, if there is one.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over messages until every sender is dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                kind: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel holding at most `capacity` in-flight messages
    /// (`capacity == 0` is a rendezvous channel).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (
            Sender {
                kind: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let handle = std::thread::spawn(move || {
            tx2.send(1).unwrap();
            tx.send(2).unwrap();
        });
        let mut got: Vec<i32> = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        handle.join().unwrap();
    }

    #[test]
    fn bounded_one_shot_reply() {
        let (tx, rx) = bounded(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok("reply"));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
