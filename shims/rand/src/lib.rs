//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small slice of the `rand 0.8` API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256**, seeded
//! through SplitMix64 — deterministic for a given seed, which is all the
//! simulator and the tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full output range
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        u128::draw(rng) as i128
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over half-open / inclusive ranges.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`, or `[low, high]` when `inclusive`.
    fn sample_between(rng: &mut dyn RngCore, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between(
                rng: &mut dyn RngCore,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample from an empty range");
                // Modulo reduction: biased by at most 2^-64 per draw, which is
                // far below anything the statistical tests can observe.
                let offset = if span <= u128::from(u64::MAX) {
                    u128::from(rng.next_u64()) % span
                } else {
                    u128::draw(rng) % span
                };
                (lo + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between(rng: &mut dyn RngCore, low: Self, high: Self, inclusive: bool) -> Self {
        if inclusive {
            // [low, high]: rand 0.8 allows the degenerate low == high case.
            assert!(low <= high, "cannot sample from an empty range");
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            low + unit * (high - low)
        } else {
            assert!(low < high, "cannot sample from an empty range");
            let value = low + unit_f64(rng.next_u64()) * (high - low);
            if value < high {
                value
            } else {
                low
            }
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between(rng: &mut dyn RngCore, low: Self, high: Self, inclusive: bool) -> Self {
        f64::sample_between(rng, f64::from(low), f64::from(high), inclusive) as f32
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = self.into_inner();
        T::sample_between(rng, start, end, true)
    }
}

/// Convenience methods layered on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro authors.
            let mut key = seed;
            let mut next = || {
                key = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = key;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
            let g: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
        // Degenerate inclusive float range is valid in rand 0.8.
        assert_eq!(rng.gen_range(0.5..=0.5), 0.5);
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} too far from 0.3");
    }
}
