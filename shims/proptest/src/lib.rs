//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, `any::<T>()` for primitives, integer ranges and
//! tuples as strategies, `proptest::collection::vec`, the `prop_assert*`
//! macros and `prop_assume!`. Cases are generated from a deterministic
//! per-test seed; there is no shrinking — a failing case panics with the
//! assertion message, which is enough for CI.
//!
//! Set `PROPTEST_CASES` to override the number of cases per test (default
//! 256).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Each `fn name(pattern in strategy, ...) { body }` item expands to a
/// `#[test]`-attributed function (the attribute is written at the call site,
/// as with real proptest) that runs the body over generated inputs. An
/// optional leading `#![proptest_config(...)]` sets the
/// [`test_runner::ProptestConfig`] for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(&($config), stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Asserts two expressions differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Discards the current case (without failing) when the precondition does
/// not hold, so strategies may over-approximate the input domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
