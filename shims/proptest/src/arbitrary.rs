//! `any::<T>()` — the canonical strategy for a type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes, like proptest's default.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exponent = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mantissa * 2f64.powi(exponent)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any::<_>()")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: the full domain, uniformly-ish.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::from_name("any");
        let values: Vec<u64> = (0..32).map(|_| any::<u64>().generate(&mut rng)).collect();
        let first = values[0];
        assert!(values.iter().any(|&v| v != first));
        let bools: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(bools.contains(&true) && bools.contains(&false));
    }
}
