//! Deterministic case generation and the test driver.

use std::fmt;

/// Number of cases per property when `PROPTEST_CASES` is unset.
const DEFAULT_CASES: u32 = 256;

/// Hard cap on consecutive `prop_assume!` rejections before the test errors
/// out as too narrow.
const MAX_REJECTS: u32 = 65_536;

/// Why a single generated case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case violated the property; the whole test fails.
    Fail(String),
    /// The case did not satisfy a `prop_assume!` precondition; it is
    /// discarded and regenerated.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from any printable reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection from any printable reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "case failed: {reason}"),
            TestCaseError::Reject(reason) => write!(f, "case rejected: {reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The generator handed to strategies: SplitMix64, seeded per test from the
/// test's name so runs are reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator deterministically from an arbitrary string.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name, so each property gets its own stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Returns the next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`. Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below zero");
        self.next_u64() % bound
    }
}

/// Per-block configuration, settable through
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required for the property to hold.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Honours the `PROPTEST_CASES` environment variable like the real
        // crate.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

/// Drives one property: generates inputs and evaluates the case closure
/// until enough cases pass, a case fails (panic), or too many are rejected.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let target = config.cases;
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < target {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < MAX_REJECTS,
                    "property `{name}`: too many cases rejected by prop_assume! \
                     ({rejected} rejections for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!("property `{name}` failed after {passed} passing case(s): {reason}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_case_panics() {
        run_cases(&ProptestConfig::default(), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn rejects_are_skipped() {
        let config = ProptestConfig::with_cases(50);
        let mut calls = 0u32;
        run_cases(&config, "rejects_then_passes", |_| {
            calls += 1;
            if calls.is_multiple_of(2) {
                Err(TestCaseError::reject("odd one out"))
            } else {
                Ok(())
            }
        });
        assert!(calls > config.cases);
    }
}
