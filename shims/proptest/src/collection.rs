//! Collection strategies: `proptest::collection::vec`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive size window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        assert!(
            self.lo < self.hi,
            "cannot generate from an empty size range"
        );
        let span = (self.hi - self.lo) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *range.start(),
            hi: *range.end() + 1,
        }
    }
}

/// Strategy generating a `Vec` whose elements come from `element` and whose
/// length falls in `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of values from `element` with a length drawn from
/// `size` (an exact `usize` or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size_window() {
        let mut rng = TestRng::from_name("vec");
        let strategy = vec(any::<u8>(), 2..5);
        for _ in 0..500 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = vec(any::<bool>(), 8).generate(&mut rng);
        assert_eq!(exact.len(), 8);
    }
}
