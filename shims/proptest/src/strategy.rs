//! The [`Strategy`] trait and the strategy forms this workspace uses:
//! ranges, tuples and [`Just`].

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there is
/// no value tree and no shrinking: `generate` produces one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot generate from an empty range");
                let span = (hi - lo) as u128;
                let offset = if span <= u128::from(u64::MAX) {
                    u128::from(rng.next_u64()) % span
                } else {
                    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                    wide % span
                };
                (lo + offset as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot generate from an empty range");
                let span = (hi - lo) as u128 + 1;
                let offset = if span <= u128::from(u64::MAX) {
                    u128::from(rng.next_u64()) % span
                } else {
                    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                    wide % span
                };
                (lo + offset as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot generate from an empty range");
                let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                let value = self.start + unit * (self.end - self.start);
                if value < self.end {
                    value
                } else {
                    self.start
                }
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot generate from an empty range");
                let unit = (rng.next_u64() >> 11) as $ty / ((1u64 << 53) - 1) as $ty;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..2_000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0usize..=4).generate(&mut rng);
            assert!(w <= 4);
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_name("tuples");
        let (a, b) = (1u8..3, Just("x")).generate(&mut rng);
        assert!((1..3).contains(&a));
        assert_eq!(b, "x");
    }
}
